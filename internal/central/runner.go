package central

import (
	"fmt"
	"math"
	"time"

	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
	"hierctl/internal/engine"
	"hierctl/internal/forecast"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// RunnerConfig parameterizes a closed-loop run of the flat controller.
type RunnerConfig struct {
	// Controller is the flat controller's configuration.
	Controller Config
	// DefaultCHat seeds the processing-time estimate.
	DefaultCHat float64
	// CHatSmoothing is the EWMA constant.
	CHatSmoothing float64
	// BandSmoothing is the uncertainty-band EWMA constant.
	BandSmoothing float64
	// Seed drives dispatch and workload randomness.
	Seed int64
	// DrainSeconds extends the run so in-flight work completes.
	DrainSeconds float64
	// Failures is an optional injection plan (scenario failure plans):
	// events are quantized to the next sub-period boundary and fire
	// ahead of the controller, matching the hierarchical engine's
	// ordering; entries whose (Module, Comp) indices are not in the
	// cluster are skipped.
	Failures []workload.FailureEvent
	// Chaos is an optional sensor-fault plan (see internal/chaos): its
	// faults corrupt what the controller observes, never the plant, and
	// its availability events merge into Failures. DecisionBudget is
	// ignored — the flat controller's exhaustive search carries no
	// deadline fallback. An empty plan is bit-identical to no plan.
	Chaos chaos.Plan
}

// DefaultRunnerConfig mirrors the hierarchy's cadences.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Controller:    DefaultConfig(),
		DefaultCHat:   0.0175,
		CHatSmoothing: 0.1,
		BandSmoothing: 0.25,
		Seed:          1,
		DrainSeconds:  300,
	}
}

// Result summarizes a flat-controller run with the hierarchy-comparable
// quantities plus the overhead counters the scalability study needs.
type Result struct {
	Energy            float64
	Switches          int
	Completed         int64
	Dropped           int64
	MeanResponse      float64
	ViolationFrac     float64
	ExploredPerStep   float64
	DecideTimePerStep time.Duration // wall-clock per decision
	// Spilled counts requests folded into the final sub-period by the
	// trace-end rounding edge (see engine.Harness.Spilled).
	Spilled int64
	// StaleObservations and SanitizedRejects are the engine sanitizer's
	// degraded-input counters (module-ticks; zero on healthy runs).
	StaleObservations int64
	SanitizedRejects  int64
	Operational       *series.Series
}

// runner adapts the flat controller onto the shared simulation engine,
// holding the estimator chain (Kalman arrival forecast, uncertainty band,
// processing-time EWMA) and the queue/gamma state the controller observes.
type runner struct {
	spec cluster.Spec
	cfg  RunnerConfig

	ctl    *Controller
	kalman *forecast.Kalman
	band   *forecast.Band
	cEst   *forecast.EWMA

	plant *cluster.Plant
	slots []slot

	decideEvery   int
	queues        []float64
	gamma         []float64
	arrivedPeriod int
	violations    int
	respBins      int
	cHat          float64

	res *Result
}

type slot struct{ i, j int }

// Name implements engine.Policy.
func (r *runner) Name() string { return "centralized" }

// Init implements engine.Policy: the plant arrives warm; the adapter
// flattens the cluster and seeds the controller-visible state.
func (r *runner) Init(p *cluster.Plant) error {
	r.plant = p
	preroll := 0.0
	for i := range r.spec.Modules {
		for j := range r.spec.Modules[i].Computers {
			r.slots = append(r.slots, slot{i, j})
			if d := r.spec.Modules[i].Computers[j].BootDelaySeconds; d > preroll {
				preroll = d
			}
		}
	}
	tl0 := r.cfg.Controller.SubPeriodSeconds
	r.decideEvery = int(r.cfg.Controller.PeriodSeconds/tl0 + 0.5)
	r.res = &Result{Operational: series.New(preroll, r.cfg.Controller.PeriodSeconds, 0)}
	r.queues = make([]float64, len(r.slots))
	r.gamma = append([]float64(nil), r.ctl.prevGamma...)
	r.cHat = r.cfg.DefaultCHat
	return nil
}

// Decide implements engine.Policy: at the controller period the estimator
// chain updates and the exhaustive controller picks the joint
// (alpha, gamma, phi) setting, which is actuated immediately; every
// sub-period the tick's arrivals dispatch under the current fractions.
func (r *runner) Decide(k int, obs engine.TickObs) (engine.Settings, error) {
	if k%r.decideEvery == 0 {
		if k > 0 {
			prior := r.kalman.Observe(float64(r.arrivedPeriod))
			if r.kalman.Steps() > 1 {
				r.band.Observe(prior, float64(r.arrivedPeriod))
			}
			r.arrivedPeriod = 0
		}
		avail := make([]bool, len(r.slots))
		for idx, s := range r.slots {
			comp, err := r.plant.Computer(s.i, s.j)
			if err != nil {
				return engine.Settings{}, err
			}
			avail[idx] = comp.State() != cluster.Failed
		}
		dec, err := r.ctl.Decide(Observation{
			QueueLens: r.queues,
			LambdaHat: math.Max(0, r.kalman.Forecast(1)) / r.cfg.Controller.PeriodSeconds,
			Delta:     r.band.Delta() / r.cfg.Controller.PeriodSeconds,
			CHat:      r.cHat,
			Available: avail,
		})
		if err != nil {
			return engine.Settings{}, err
		}
		for idx, s := range r.slots {
			comp, err := r.plant.Computer(s.i, s.j)
			if err != nil {
				return engine.Settings{}, err
			}
			operational := comp.State() == cluster.PowerOn || comp.State() == cluster.Booting
			if dec.Alpha[idx] && !operational {
				if err := r.plant.PowerOn(s.i, s.j); err != nil {
					return engine.Settings{}, err
				}
			}
			if !dec.Alpha[idx] && operational {
				if err := r.plant.PowerOff(s.i, s.j); err != nil {
					return engine.Settings{}, err
				}
			}
			if err := r.plant.SetFrequency(s.i, s.j, dec.FreqIdx[idx]); err != nil {
				return engine.Settings{}, err
			}
		}
		r.gamma = dec.Gamma
		r.res.Operational.Values = append(r.res.Operational.Values, float64(r.plant.OperationalComputers()))
	}

	if obs.PendingRequests == 0 {
		return engine.Settings{}, nil
	}
	// Dispatch per the joint fractions, zeroing non-serving targets.
	gm := make([]float64, len(r.spec.Modules))
	gc := make([][]float64, len(r.spec.Modules))
	for i := range r.spec.Modules {
		gc[i] = make([]float64, len(r.spec.Modules[i].Computers))
	}
	for idx, s := range r.slots {
		comp, err := r.plant.Computer(s.i, s.j)
		if err != nil {
			return engine.Settings{}, err
		}
		if comp.State() == cluster.PowerOn {
			gc[s.i][s.j] = r.gamma[idx]
			gm[s.i] += r.gamma[idx]
		}
	}
	return engine.Settings{GammaModules: gm, GammaComputers: gc}, nil
}

// Observe implements engine.Policy: fold the sub-period's harvest into the
// queue snapshot, arrival accumulator, processing-time EWMA, and QoS
// accounting.
func (r *runner) Observe(k int, stats []engine.ModuleStats) error {
	arrived, completed := 0, 0
	respSum, demandSum := 0.0, 0.0
	qi := 0
	for _, st := range stats {
		agg := st.Agg
		arrived += agg.Arrived
		completed += agg.Completed
		if agg.Completed > 0 {
			respSum += agg.MeanResponse * float64(agg.Completed)
			demandSum += agg.MeanDemand * float64(agg.Completed)
		}
		for _, p := range st.Per {
			r.queues[qi] = float64(p.QueueLen)
			qi++
		}
	}
	r.arrivedPeriod += arrived
	if completed > 0 {
		if r.cEst.Observe(demandSum / float64(completed)); r.cEst.Started() {
			r.cHat = r.cEst.Value()
		}
		r.respBins++
		if respSum/float64(completed) > r.cfg.Controller.TargetResponse {
			r.violations++
		}
	}
	return nil
}

// Run simulates the flat controller against the plant for the whole
// trace. The trace bin width must be an integer multiple of the
// controller's sub-period.
//
// Run is a thin adapter over the shared simulation engine (see
// internal/engine): the harness owns the mechanics, the runner above owns
// the control. Results are bit-identical to the package's historical
// private loop, kept as the oracle in legacy_oracle_test.go.
func Run(spec cluster.Spec, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*Result, error) {
	if err := cfg.Controller.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("central: empty trace")
	}
	var specs []cluster.ComputerSpec
	for i := range spec.Modules {
		specs = append(specs, spec.Modules[i].Computers...)
	}
	ctl, err := New(cfg.Controller, specs)
	if err != nil {
		return nil, err
	}
	kalman, err := forecast.NewKalman(1, 0.1, 10)
	if err != nil {
		return nil, err
	}
	if tuned, _, err := forecast.TuneKalman(trace.Values[:min(len(trace.Values), max(8, trace.Len()/5))]); err == nil {
		ql, qt, ro := tuned.Params()
		if kalman, err = forecast.NewKalman(ql, qt, ro); err != nil {
			return nil, err
		}
	}
	band, err := forecast.NewBand(cfg.BandSmoothing)
	if err != nil {
		return nil, err
	}
	cEst, err := forecast.NewEWMA(cfg.CHatSmoothing)
	if err != nil {
		return nil, err
	}

	r := &runner{spec: spec, cfg: cfg, ctl: ctl, kalman: kalman, band: band, cEst: cEst}
	h, err := engine.New(engine.Config{
		Spec:           spec,
		Seed:           cfg.Seed,
		DispatchStream: "central-dispatch",
		WorkloadStream: "central-workload",
		PeriodSeconds:  cfg.Controller.SubPeriodSeconds,
		BinSeconds:     trace.Step,
		Start:          trace.Start,
		TotalBins:      trace.Len(),
		DrainSeconds:   cfg.DrainSeconds,
		Failures:       cfg.Failures,
		Chaos:          cfg.Chaos,
		Spread:         engine.SpreadRunArray,
	}, store, r)
	if err != nil {
		return nil, err
	}
	if err := h.RunTrace(trace); err != nil {
		return nil, err
	}
	tot, err := h.Totals()
	if err != nil {
		return nil, err
	}
	res := r.res
	res.Energy = tot.Energy
	res.Switches = tot.Switches
	res.Completed = tot.Completed
	res.Dropped = tot.Dropped
	res.MeanResponse = tot.MeanResponse
	res.Spilled = h.Spilled()
	res.StaleObservations = h.StaleObservations()
	res.SanitizedRejects = h.SanitizedRejects()
	if r.respBins > 0 {
		res.ViolationFrac = float64(r.violations) / float64(r.respBins)
	}
	explored, decisions, compute := ctl.Overhead()
	if decisions > 0 {
		res.ExploredPerStep = float64(explored) / float64(decisions)
		res.DecideTimePerStep = compute / time.Duration(decisions)
	}
	return res, nil
}
