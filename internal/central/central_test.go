package central

import (
	"math"
	"math/rand"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/power"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

func testComputer(name string) cluster.ComputerSpec {
	return cluster.ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{0.5e9, 1e9, 1.5e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func testSpecs(n int) []cluster.ComputerSpec {
	out := make([]cluster.ComputerSpec, n)
	for j := range out {
		out[j] = testComputer("c" + string(rune('0'+j)))
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.PeriodSeconds = 0 },
		func(c *Config) { c.SubPeriodSeconds = c.PeriodSeconds * 2 },
		func(c *Config) { c.TargetResponse = 0 },
		func(c *Config) { c.TargetMargin = 1.5 },
		func(c *Config) { c.SlackWeight = -1 },
		func(c *Config) { c.Quantum = 0.3 },
		func(c *Config) { c.NeighbourDepth = 0 },
		func(c *Config) { c.MinOn = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("no computers: want error")
	}
	cfg := DefaultConfig()
	cfg.MinOn = 10
	if _, err := New(cfg, testSpecs(2)); err == nil {
		t.Error("min-on > size: want error")
	}
}

func TestDecideScalesWithLoad(t *testing.T) {
	ctl, err := New(DefaultConfig(), testSpecs(4))
	if err != nil {
		t.Fatal(err)
	}
	// Low load: scale down over repeated decisions.
	on := 4
	for i := 0; i < 4; i++ {
		dec, err := ctl.Decide(Observation{
			QueueLens: []float64{0, 0, 0, 0},
			LambdaHat: 2,
			CHat:      0.0175,
		})
		if err != nil {
			t.Fatal(err)
		}
		on = countOn(dec.Alpha)
		validateGamma(t, dec)
	}
	if on != 1 {
		t.Errorf("computers on at trivial load = %d, want 1", on)
	}
	// Overload from one computer: scale up.
	if err := ctl.SetState([]bool{true, false, false, false}, []float64{1, 0, 0, 0}, []int{3, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	dec, err := ctl.Decide(Observation{
		QueueLens: []float64{200, 0, 0, 0},
		LambdaHat: 150,
		CHat:      0.0175,
	})
	if err != nil {
		t.Fatal(err)
	}
	if countOn(dec.Alpha) <= 1 {
		t.Errorf("computers on under overload = %d, want > 1", countOn(dec.Alpha))
	}
}

func validateGamma(t *testing.T, dec Decision) {
	t.Helper()
	sum := 0.0
	for j, g := range dec.Gamma {
		if !dec.Alpha[j] && g != 0 {
			t.Errorf("γ[%d] = %v on off computer", j, g)
		}
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σγ = %v", sum)
	}
}

func TestDecideRespectsAvailability(t *testing.T) {
	ctl, err := New(DefaultConfig(), testSpecs(3))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ctl.Decide(Observation{
		QueueLens: []float64{10, 10, 10},
		LambdaHat: 120,
		CHat:      0.0175,
		Available: []bool{true, false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Alpha[1] {
		t.Error("failed computer powered on")
	}
	if dec.Gamma[1] != 0 {
		t.Error("failed computer received load")
	}
}

func TestExploredGrowsWithClusterSize(t *testing.T) {
	// The paper's scalability claim: the flat controller's search space
	// grows super-linearly with n while the hierarchy's per-module cost
	// stays flat.
	exploredAt := func(n int) int {
		ctl, err := New(DefaultConfig(), testSpecs(n))
		if err != nil {
			t.Fatal(err)
		}
		queues := make([]float64, n)
		dec, err := ctl.Decide(Observation{
			QueueLens: queues,
			LambdaHat: float64(30 * n),
			Delta:     5,
			CHat:      0.0175,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dec.Explored
	}
	e4, e8 := exploredAt(4), exploredAt(8)
	if e8 <= 2*e4 {
		t.Errorf("flat search did not grow super-linearly: n=4 → %d, n=8 → %d", e4, e8)
	}
}

func TestDecideValidation(t *testing.T) {
	ctl, err := New(DefaultConfig(), testSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Decide(Observation{QueueLens: []float64{1}, LambdaHat: 1, CHat: 0.0175}); err == nil {
		t.Error("queue size mismatch: want error")
	}
	if _, err := ctl.Decide(Observation{QueueLens: []float64{1, 1}, LambdaHat: 1, CHat: 0}); err == nil {
		t.Error("zero c-hat: want error")
	}
	if err := ctl.SetState([]bool{true}, []float64{1}, []int{0}); err == nil {
		t.Error("state size mismatch: want error")
	}
}

func TestRunClosedLoop(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		{Name: "M1", Computers: testSpecs(4)},
	}}
	trace := series.New(0, 30, 40)
	for i := range trace.Values {
		trace.Values[i] = 900 // 30 req/s
	}
	storeCfg := workload.DefaultStoreConfig()
	storeCfg.Objects = 300
	storeCfg.PopularCount = 30
	store, err := workload.NewStore(rand.New(rand.NewSource(2)), storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, trace, store, DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(trace.Sum())
	if res.Completed < total*95/100 {
		t.Errorf("completed %d of %d", res.Completed, total)
	}
	if res.MeanResponse > 4 {
		t.Errorf("mean response %v above target", res.MeanResponse)
	}
	if res.ExploredPerStep <= 0 || res.DecideTimePerStep <= 0 {
		t.Error("overhead counters not recorded")
	}
	if res.Operational.Len() == 0 {
		t.Error("no operational series")
	}
}

func TestRunValidation(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		{Name: "M1", Computers: testSpecs(2)},
	}}
	storeCfg := workload.DefaultStoreConfig()
	store, err := workload.NewStore(rand.New(rand.NewSource(1)), storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, nil, store, DefaultRunnerConfig()); err == nil {
		t.Error("nil trace: want error")
	}
	bad := series.New(0, 45, 10)
	for i := range bad.Values {
		bad.Values[i] = 10
	}
	if _, err := Run(spec, bad, store, DefaultRunnerConfig()); err == nil {
		t.Error("misaligned trace: want error")
	}
}

// TestPruningPreservesDecisionAndParallelInvariance pins the flat
// controller's branch-and-bound contract: pruned and unpruned searches
// pick the identical joint configuration (pruning never explores more),
// and — because incumbents are shard-local — the pruned explored count is
// identical at every Parallelism setting, keeping the EXT3 comparison
// about decomposition rather than thread count.
func TestPruningPreservesDecisionAndParallelInvariance(t *testing.T) {
	obs := []Observation{
		{QueueLens: []float64{0, 0, 0, 0}, LambdaHat: 30, Delta: 5, CHat: 0.0175},
		{QueueLens: []float64{60, 10, 0, 5}, LambdaHat: 180, Delta: 40, CHat: 0.0175},
		{QueueLens: []float64{5, 5, 50, 0}, LambdaHat: 90, Delta: 20, CHat: 0.0175},
	}
	mk := func(prune bool, parallelism int) *Controller {
		cfg := DefaultConfig()
		cfg.NonNegativeCosts = prune
		cfg.Parallelism = parallelism
		ctl, err := New(cfg, testSpecs(4))
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	pruned, naive, prunedPar := mk(true, 1), mk(false, 1), mk(true, 8)
	for step, o := range obs {
		dp, err := pruned.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := naive.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		dpp, err := prunedPar.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := range dn.Alpha {
			if dp.Alpha[j] != dn.Alpha[j] || dp.Gamma[j] != dn.Gamma[j] || dp.FreqIdx[j] != dn.FreqIdx[j] {
				t.Fatalf("step %d computer %d: pruned/naive decisions diverged", step, j)
			}
			if dp.Alpha[j] != dpp.Alpha[j] || dp.Gamma[j] != dpp.Gamma[j] || dp.FreqIdx[j] != dpp.FreqIdx[j] {
				t.Fatalf("step %d computer %d: sequential/parallel decisions diverged", step, j)
			}
		}
		if dp.Explored > dn.Explored {
			t.Errorf("step %d: pruned explored %d exceeds naive %d", step, dp.Explored, dn.Explored)
		}
		if dp.Explored != dpp.Explored {
			t.Errorf("step %d: explored %d sequential vs %d parallel", step, dp.Explored, dpp.Explored)
		}
	}
}
