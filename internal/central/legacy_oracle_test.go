package central

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hierctl/internal/cluster"
	"hierctl/internal/des"
	"hierctl/internal/forecast"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// legacyRun is the package's pre-engine private step loop, kept verbatim
// as the equivalence oracle for the engine-backed Run. Do not modify it:
// Run must keep producing bit-identical results against an independent
// implementation of the mechanics.
func legacyRun(spec cluster.Spec, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*Result, error) {
	if err := cfg.Controller.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("central: empty trace")
	}
	sub := int(trace.Step/cfg.Controller.SubPeriodSeconds + 0.5)
	if sub < 1 || math.Abs(float64(sub)*cfg.Controller.SubPeriodSeconds-trace.Step) > 1e-6 {
		return nil, fmt.Errorf("central: trace bin %vs not a multiple of sub-period %vs", trace.Step, cfg.Controller.SubPeriodSeconds)
	}
	plant, err := cluster.NewPlant(spec, des.RNG(cfg.Seed, "central-dispatch"))
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(trace, store, des.RNG(cfg.Seed, "central-workload"))
	if err != nil {
		return nil, err
	}

	// Flatten the cluster.
	type slot struct{ i, j int }
	var slots []slot
	var specs []cluster.ComputerSpec
	preroll := 0.0
	for i := range spec.Modules {
		for j := range spec.Modules[i].Computers {
			slots = append(slots, slot{i, j})
			specs = append(specs, spec.Modules[i].Computers[j])
			if d := spec.Modules[i].Computers[j].BootDelaySeconds; d > preroll {
				preroll = d
			}
		}
	}
	ctl, err := New(cfg.Controller, specs)
	if err != nil {
		return nil, err
	}
	kalman, err := forecast.NewKalman(1, 0.1, 10)
	if err != nil {
		return nil, err
	}
	if tuned, _, err := forecast.TuneKalman(trace.Values[:min(len(trace.Values), max(8, trace.Len()/5))]); err == nil {
		ql, qt, ro := tuned.Params()
		if kalman, err = forecast.NewKalman(ql, qt, ro); err != nil {
			return nil, err
		}
	}
	band, err := forecast.NewBand(cfg.BandSmoothing)
	if err != nil {
		return nil, err
	}
	cEst, err := forecast.NewEWMA(cfg.CHatSmoothing)
	if err != nil {
		return nil, err
	}

	// Warm start all-on at full speed.
	for k, s := range slots {
		if err := plant.PowerOn(s.i, s.j); err != nil {
			return nil, err
		}
		if err := plant.SetFrequency(s.i, s.j, len(specs[k].FrequenciesHz)-1); err != nil {
			return nil, err
		}
	}
	if preroll > 0 {
		if err := plant.Advance(preroll); err != nil {
			return nil, err
		}
		for i := range spec.Modules {
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return nil, err
			}
		}
	}

	tl0 := cfg.Controller.SubPeriodSeconds
	steps := trace.Len() * sub
	decideEvery := int(cfg.Controller.PeriodSeconds/tl0 + 0.5)
	res := &Result{Operational: series.New(preroll, cfg.Controller.PeriodSeconds, 0)}
	pending := make([][]workload.Request, steps)
	queues := make([]float64, len(slots))
	gamma := append([]float64(nil), ctl.prevGamma...)
	arrivedPeriod := 0
	violations, respBins := 0, 0
	cHat := cfg.DefaultCHat

	failAt := cluster.FailureSteps(cfg.Failures, tl0)

	for k := 0; k < steps; k++ {
		t := preroll + float64(k)*tl0
		if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, k); err != nil {
			return nil, err
		}
		if k%sub == 0 {
			bin, reqs, ok := gen.NextBin()
			if !ok {
				return nil, fmt.Errorf("central: trace exhausted at step %d", k)
			}
			binStart := trace.TimeAt(bin)
			for _, req := range reqs {
				idx := k + int((req.Arrival-binStart)/tl0)
				if idx >= steps {
					idx = steps - 1
				}
				req.Arrival += preroll - trace.Start
				pending[idx] = append(pending[idx], req)
			}
		}

		if k%decideEvery == 0 {
			if k > 0 {
				prior := kalman.Observe(float64(arrivedPeriod))
				if kalman.Steps() > 1 {
					band.Observe(prior, float64(arrivedPeriod))
				}
				arrivedPeriod = 0
			}
			avail := make([]bool, len(slots))
			for idx, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				avail[idx] = comp.State() != cluster.Failed
			}
			dec, err := ctl.Decide(Observation{
				QueueLens: queues,
				LambdaHat: math.Max(0, kalman.Forecast(1)) / cfg.Controller.PeriodSeconds,
				Delta:     band.Delta() / cfg.Controller.PeriodSeconds,
				CHat:      cHat,
				Available: avail,
			})
			if err != nil {
				return nil, err
			}
			for idx, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				operational := comp.State() == cluster.PowerOn || comp.State() == cluster.Booting
				if dec.Alpha[idx] && !operational {
					if err := plant.PowerOn(s.i, s.j); err != nil {
						return nil, err
					}
				}
				if !dec.Alpha[idx] && operational {
					if err := plant.PowerOff(s.i, s.j); err != nil {
						return nil, err
					}
				}
				if err := plant.SetFrequency(s.i, s.j, dec.FreqIdx[idx]); err != nil {
					return nil, err
				}
			}
			gamma = dec.Gamma
			res.Operational.Values = append(res.Operational.Values, float64(plant.OperationalComputers()))
		}

		// Dispatch per the joint fractions, zeroing non-serving targets.
		if len(pending[k]) > 0 {
			gm := make([]float64, len(spec.Modules))
			gc := make([][]float64, len(spec.Modules))
			for i := range spec.Modules {
				gc[i] = make([]float64, len(spec.Modules[i].Computers))
			}
			for idx, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				if comp.State() == cluster.PowerOn {
					gc[s.i][s.j] = gamma[idx]
					gm[s.i] += gamma[idx]
				}
			}
			if err := plant.Dispatch(pending[k], gm, gc); err != nil {
				return nil, err
			}
			pending[k] = nil
		}

		if err := plant.Advance(t + tl0); err != nil {
			return nil, err
		}

		arrived, completed := 0, 0
		respSum, demandSum := 0.0, 0.0
		qi := 0
		for i := range spec.Modules {
			agg, per, err := plant.ModuleIntervalStats(i)
			if err != nil {
				return nil, err
			}
			arrived += agg.Arrived
			completed += agg.Completed
			if agg.Completed > 0 {
				respSum += agg.MeanResponse * float64(agg.Completed)
				demandSum += agg.MeanDemand * float64(agg.Completed)
			}
			for _, st := range per {
				queues[qi] = float64(st.QueueLen)
				qi++
			}
		}
		arrivedPeriod += arrived
		if completed > 0 {
			if cEst.Observe(demandSum / float64(completed)); cEst.Started() {
				cHat = cEst.Value()
			}
			respBins++
			if respSum/float64(completed) > cfg.Controller.TargetResponse {
				violations++
			}
		}
	}

	// Events quantized exactly to the final boundary still fire before
	// the drain, matching the hierarchical engine.
	if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, steps); err != nil {
		return nil, err
	}
	end := preroll + float64(steps)*tl0
	if err := plant.Advance(end + cfg.DrainSeconds); err != nil {
		return nil, err
	}
	plant.FinishAccounting()
	res.Energy = plant.Accountant().TotalEnergy()
	res.Switches = plant.Accountant().TotalSwitches()
	var respAll float64
	var respCount int64
	for _, s := range slots {
		comp, err := plant.Computer(s.i, s.j)
		if err != nil {
			return nil, err
		}
		res.Completed += comp.TotalCompleted()
		res.Dropped += comp.TotalDropped()
		respAll += comp.LifetimeResponse().Mean() * float64(comp.LifetimeResponse().Count())
		respCount += comp.LifetimeResponse().Count()
	}
	if respCount > 0 {
		res.MeanResponse = respAll / float64(respCount)
	}
	if respBins > 0 {
		res.ViolationFrac = float64(violations) / float64(respBins)
	}
	explored, decisions, compute := ctl.Overhead()
	if decisions > 0 {
		res.ExploredPerStep = float64(explored) / float64(decisions)
		res.DecideTimePerStep = compute / time.Duration(decisions)
	}
	return res, nil
}

// TestRunMatchesLegacyOracle pins the engine migration for the flat
// controller: the engine-backed Run must reproduce the legacy step loop
// bit-for-bit across the scenario registry, multiple seeds, and both
// sequential and sharded candidate search. Wall-clock decide time is the
// one nondeterministic field and is zeroed before comparison.
func TestRunMatchesLegacyOracle(t *testing.T) {
	module, err := cluster.StandardModule("M1", "c")
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{module}}

	for _, sc := range workload.Scenarios() {
		if sc.NeedsArg {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				trace, err := sc.Trace(seed)
				if err != nil {
					t.Fatal(err)
				}
				sc.ScaleToCluster(trace, 4)
				if trace.Len() > 24 {
					trace = trace.Slice(0, 24)
				}
				plan := sc.FailurePlan(trace)
				cfg := DefaultRunnerConfig()
				cfg.Seed = seed
				cfg.Failures = plan
				cfg.Controller.NeighbourDepth = 1
				// Sweep the candidate-search sharding: decisions and
				// explored counts must not depend on worker count.
				cfg.Controller.Parallelism = 1
				if seed%2 == 0 {
					cfg.Controller.Parallelism = 4
				}

				store, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
				if err != nil {
					t.Fatal(err)
				}
				want, err := legacyRun(spec, trace, store, cfg)
				if err != nil {
					t.Fatalf("seed %d: legacy: %v", seed, err)
				}
				store2, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(spec, trace, store2, cfg)
				if err != nil {
					t.Fatalf("seed %d: engine: %v", seed, err)
				}

				// Zero the wall-clock field; align the new spill counter
				// the oracle predates.
				want.DecideTimePerStep = 0
				gotCopy := *got
				gotCopy.DecideTimePerStep = 0
				want.Spilled = gotCopy.Spilled
				if !reflect.DeepEqual(want, &gotCopy) {
					t.Errorf("seed %d: engine run diverges from legacy oracle\nlegacy: %+v\nengine: %+v", seed, want, &gotCopy)
				}
			}
		})
	}
}
