// Package central implements the flat, non-hierarchical controller the
// paper argues against in §3: one optimizer that jointly decides every
// computer's operating state α_j, load fraction γ_j, and frequency u_j for
// the whole cluster. It exists to reproduce the paper's scalability claim
// quantitatively — "where a centralized controller must decide the
// variables {γ, α, u} for each of the n computers in the cluster, in our
// method the L2 controller only decides a single-dimensional variable" —
// by measuring how the flat controller's explored-state count and decision
// time grow with cluster size compared to the hierarchy's.
//
// The controller uses the same machinery the hierarchy does — the fluid
// queue model for prediction, a Kalman filter for arrivals, bounded
// neighbourhood search over the joint configuration — so the comparison
// isolates the effect of decomposition, not implementation quality.
//
// Invariant: the candidate search shards by α-candidate with a private
// branch-and-bound incumbent per shard, so decisions, costs, and the
// explored-state counters are all independent of Config.Parallelism —
// EXT3's overhead comparison stays apples-to-apples at any worker count
// (pinned by TestPruningPreservesDecisionAndParallelInvariance).
package central

import (
	"fmt"
	"math"
	"time"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/llc"
	"hierctl/internal/par"
	"hierctl/internal/queue"
)

// Config parameterizes the flat controller.
type Config struct {
	// PeriodSeconds is the decision period (match T_L1 for fairness).
	PeriodSeconds float64
	// SubPeriodSeconds is the granularity of the internal fluid
	// prediction (match T_L0).
	SubPeriodSeconds float64
	// TargetResponse and TargetMargin mirror the hierarchy's set-point.
	TargetResponse float64
	TargetMargin   float64
	// SlackWeight, PowerWeight and SwitchWeight mirror Q, R and W.
	SlackWeight, PowerWeight, SwitchWeight float64
	// Quantum quantizes the joint load fractions.
	Quantum float64
	// NeighbourDepth bounds the γ neighbourhood per candidate α/u.
	NeighbourDepth int
	// FreqSteps bounds how many frequency-index moves (±1 per computer)
	// are explored per period.
	FreqSteps int
	// MinOn keeps at least this many computers operational.
	MinOn int
	// Parallelism bounds the workers that shard the candidate search
	// (one α candidate with its γ and u passes per task). 0 uses one
	// worker per CPU; 1 reproduces the sequential search. The selected
	// decision and the explored-state count are identical at any
	// setting, so the EXT3 comparison keeps measuring control
	// decomposition, not thread count.
	Parallelism int
	// NonNegativeCosts declares the per-sample configuration costs
	// non-negative — true for the fluid-model pricing below, a sum of
	// slack, power and switch terms — enabling the same branch-and-bound
	// pruning the hierarchy's searches use: a candidate whose partial
	// sample average already meets its pass's incumbent is abandoned
	// early. Incumbents are kept per α shard, so the decision and the
	// explored-state count stay identical at any Parallelism and the
	// EXT3 baseline remains apples-to-apples with the pruned hierarchy.
	NonNegativeCosts bool
}

// DefaultConfig mirrors the hierarchy's settings.
func DefaultConfig() Config {
	return Config{
		PeriodSeconds:    120,
		SubPeriodSeconds: 30,
		TargetResponse:   4,
		TargetMargin:     0.8,
		SlackWeight:      100,
		PowerWeight:      1,
		SwitchWeight:     8,
		Quantum:          0.05,
		NeighbourDepth:   2,
		FreqSteps:        1,
		MinOn:            1,
		NonNegativeCosts: true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.PeriodSeconds <= 0 || c.SubPeriodSeconds <= 0 || c.PeriodSeconds < c.SubPeriodSeconds {
		return fmt.Errorf("central: invalid periods (%v, %v)", c.PeriodSeconds, c.SubPeriodSeconds)
	}
	if c.TargetResponse <= 0 {
		return fmt.Errorf("central: target response %v <= 0", c.TargetResponse)
	}
	if c.TargetMargin <= 0 || c.TargetMargin > 1 {
		return fmt.Errorf("central: target margin %v outside (0, 1]", c.TargetMargin)
	}
	if c.SlackWeight < 0 || c.PowerWeight < 0 || c.SwitchWeight < 0 {
		return fmt.Errorf("central: negative weights")
	}
	units := math.Round(1 / c.Quantum)
	if c.Quantum <= 0 || math.Abs(units*c.Quantum-1) > 1e-9 {
		return fmt.Errorf("central: quantum %v must divide 1", c.Quantum)
	}
	if c.NeighbourDepth < 1 || c.FreqSteps < 0 {
		return fmt.Errorf("central: invalid search bounds")
	}
	if c.MinOn < 1 {
		return fmt.Errorf("central: min-on %d < 1", c.MinOn)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("central: parallelism %d < 0", c.Parallelism)
	}
	return nil
}

// Decision is the flat controller's joint output.
type Decision struct {
	// Alpha[j] is the on/off state of computer j (flat index).
	Alpha []bool
	// Gamma[j] is computer j's share of the whole cluster's arrivals.
	Gamma []float64
	// FreqIdx[j] is computer j's DVFS operating point.
	FreqIdx []int
	// Explored counts candidate configurations evaluated.
	Explored int
}

// Controller is the flat cluster controller. Construct with New.
type Controller struct {
	cfg   Config
	specs []cluster.ComputerSpec

	prevAlpha []bool
	prevGamma []float64
	prevFreq  []int

	explored    int
	decisions   int
	computeTime time.Duration
}

// New builds a flat controller over the given computers (flattened from
// the cluster spec; the flat controller ignores module boundaries).
func New(cfg Config, specs []cluster.ComputerSpec) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("central: no computers")
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("central: computer %d: %w", i, err)
		}
	}
	if cfg.MinOn > len(specs) {
		return nil, fmt.Errorf("central: min-on %d exceeds cluster size %d", cfg.MinOn, len(specs))
	}
	n := len(specs)
	c := &Controller{cfg: cfg, specs: specs}
	c.prevAlpha = make([]bool, n)
	c.prevFreq = make([]int, n)
	caps := make([]float64, n)
	mask := make([]bool, n)
	for j := range specs {
		c.prevAlpha[j] = true
		c.prevFreq[j] = len(specs[j].FrequenciesHz) - 1
		caps[j] = specs[j].SpeedFactor
		mask[j] = true
	}
	var err error
	c.prevGamma, err = controller.SnapSimplex(caps, mask, cfg.Quantum)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Observation is the flat controller's input.
type Observation struct {
	// QueueLens per computer (flat order).
	QueueLens []float64
	// LambdaHat is the forecast cluster arrival rate (requests/second).
	LambdaHat float64
	// Delta is the forecast uncertainty band half-width.
	Delta float64
	// CHat is the processing-time estimate (seconds).
	CHat float64
	// Available marks computers that may be powered (false = failed).
	Available []bool
}

// SetState overrides the controller's previous decision.
func (c *Controller) SetState(alpha []bool, gamma []float64, freq []int) error {
	n := len(c.specs)
	if len(alpha) != n || len(gamma) != n || len(freq) != n {
		return fmt.Errorf("central: state size mismatch")
	}
	c.prevAlpha = append([]bool(nil), alpha...)
	c.prevGamma = append([]float64(nil), gamma...)
	c.prevFreq = append([]int(nil), freq...)
	return nil
}

// Decide jointly picks (α, γ, u) for the next period by bounded search
// over the flat configuration space: candidate α vectors (previous plus
// single toggles plus all-on), for each a γ neighbourhood on the quantized
// simplex, and per-computer frequency moves within FreqSteps of the
// previous operating point. The full cartesian product α×γ×u is
// intractable even at n = 8 (this is exactly the §3 dimensionality
// argument), so the search uses coordinate descent per α candidate: best γ
// at held frequencies, then best frequency vector at the chosen γ. Even
// with that concession the explored-state count grows super-linearly with
// the cluster size, which is what the scalability experiment measures.
// The cost of one candidate is the fluid-model cost accumulated over the
// period at SubPeriod granularity, with the same slack/power/switch
// weights the hierarchy uses.
func (c *Controller) Decide(obs Observation) (Decision, error) {
	n := len(c.specs)
	if len(obs.QueueLens) != n {
		return Decision{}, fmt.Errorf("central: observation has %d queues, cluster has %d", len(obs.QueueLens), n)
	}
	if obs.Available == nil {
		obs.Available = make([]bool, n)
		for j := range obs.Available {
			obs.Available[j] = true
		}
	}
	if len(obs.Available) != n {
		return Decision{}, fmt.Errorf("central: availability size mismatch")
	}
	if obs.CHat <= 0 {
		return Decision{}, fmt.Errorf("central: non-positive c-hat")
	}
	if obs.LambdaHat < 0 {
		obs.LambdaHat = 0
	}
	samples := []float64{obs.LambdaHat}
	if obs.Delta > 0 {
		samples = []float64{math.Max(0, obs.LambdaHat-obs.Delta), obs.LambdaHat, obs.LambdaHat + obs.Delta}
	}

	// The search is sharded by α candidate: each task runs that
	// candidate's γ and u passes against the previous (read-only) state
	// and records its local optimum in an indexed slot. The sequential
	// reduction below then applies the same first-strict-improvement rule
	// the single-threaded loop used, so the winning configuration and the
	// explored-state count are identical at any worker count.
	cands := c.alphaCandidates(obs.Available)
	type shard struct {
		cost     float64
		dec      Decision
		explored int
		elapsed  time.Duration
	}
	shards := make([]shard, len(cands))
	_ = par.For(par.Workers(c.cfg.Parallelism), len(cands), func(ci int) error {
		shardStart := time.Now() //hpm:wallclock §4.3 controller-overhead metric; summed per-shard compute, never a decision input
		alpha := cands[ci]
		local := shard{cost: math.Inf(1)}
		nSamples := float64(len(samples))
		// price returns the candidate's expected cost and whether it
		// completed: under NonNegativeCosts a candidate whose partial
		// sample average already meets the pass's incumbent is abandoned
		// (it could at best tie, and ties never displace the incumbent),
		// mirroring the hierarchy's branch-and-bound. The incumbent is
		// shard-local, so explored counts stay parallelism-independent.
		price := func(gamma []float64, freq []int, incumbent float64) (float64, bool) {
			sum := 0.0
			for si, lam := range samples {
				sum += c.evaluate(alpha, gamma, freq, obs, lam)
				local.explored++
				if c.cfg.NonNegativeCosts && llc.PrunePartialMean(sum, len(samples), si, incumbent) {
					return 0, false
				}
			}
			return sum / nSamples, true
		}
		stay := make([]int, n)
		for j := range c.specs {
			stay[j] = clampIdx(c.prevFreq[j], len(c.specs[j].FrequenciesHz))
		}
		// Pass 1: best γ at held frequencies.
		gammaCost := math.Inf(1)
		var bestGamma []float64
		for _, gamma := range c.gammaCandidates(alpha) {
			if cost, ok := price(gamma, stay, gammaCost); ok && cost < gammaCost {
				gammaCost = cost
				bestGamma = gamma
			}
		}
		if bestGamma == nil {
			local.elapsed = time.Since(shardStart) //hpm:wallclock §4.3 controller-overhead metric; observe-only
			shards[ci] = local
			return nil
		}
		// Pass 2: best frequency vector at the chosen γ.
		for _, freq := range c.freqCandidates(alpha) {
			if cost, ok := price(bestGamma, freq, local.cost); ok && cost < local.cost {
				local.cost = cost
				local.dec = Decision{Alpha: alpha, Gamma: bestGamma, FreqIdx: freq}
			}
		}
		local.elapsed = time.Since(shardStart) //hpm:wallclock §4.3 controller-overhead metric; observe-only
		shards[ci] = local
		return nil
	})
	best := Decision{}
	bestCost := math.Inf(1)
	explored := 0
	// Overhead is the summed per-shard compute, not the fan-out's
	// wall-clock span — the same accounting the hierarchy uses (its
	// L1Time sums each module's own Decide duration), so the EXT3
	// comparison stays about control decomposition at any Parallelism.
	var elapsed time.Duration
	for _, s := range shards {
		explored += s.explored
		elapsed += s.elapsed
		if s.cost < bestCost {
			bestCost = s.cost
			best = s.dec
		}
	}
	if math.IsInf(bestCost, 1) {
		return Decision{}, fmt.Errorf("central: no candidate configuration")
	}
	best.Alpha = append([]bool(nil), best.Alpha...)
	best.Gamma = append([]float64(nil), best.Gamma...)
	best.FreqIdx = append([]int(nil), best.FreqIdx...)
	best.Explored = explored
	c.prevAlpha = best.Alpha
	c.prevGamma = best.Gamma
	c.prevFreq = best.FreqIdx
	c.explored += explored
	c.decisions++
	c.computeTime += elapsed
	return best, nil
}

// evaluate prices a joint configuration: fluid-model slack + power per
// sub-period per on computer, plus switch-on transients.
func (c *Controller) evaluate(alpha []bool, gamma []float64, freq []int, obs Observation, lambda float64) float64 {
	subSteps := int(c.cfg.PeriodSeconds/c.cfg.SubPeriodSeconds + 0.5)
	target := c.cfg.TargetMargin * c.cfg.TargetResponse
	total := 0.0
	for j := range c.specs {
		if !alpha[j] {
			continue
		}
		if !c.prevAlpha[j] {
			total += c.cfg.SwitchWeight
		}
		phi := c.specs[j].Phi(freq[j])
		state := queue.State{Q: obs.QueueLens[j]}
		lamJ := gamma[j] * lambda
		for s := 0; s < subSteps; s++ {
			next, err := queue.Step(state, queue.Params{
				Lambda: lamJ,
				C:      obs.CHat / c.specs[j].SpeedFactor,
				Phi:    phi,
				T:      c.cfg.SubPeriodSeconds,
			})
			if err != nil {
				return math.Inf(1)
			}
			total += c.cfg.SlackWeight*llc.Slack(next.R, target) +
				c.cfg.PowerWeight*c.specs[j].Power.Draw(phi, true)
			state = next
		}
	}
	return total
}

// alphaCandidates mirrors the hierarchy's bounded on/off set, but over the
// whole cluster: previous vector, every single toggle, all-available-on.
func (c *Controller) alphaCandidates(avail []bool) [][]bool {
	n := len(c.specs)
	base := make([]bool, n)
	for j := range base {
		base[j] = c.prevAlpha[j] && avail[j]
	}
	for j := 0; countOn(base) < c.cfg.MinOn && j < n; j++ {
		if avail[j] && !base[j] {
			base[j] = true
		}
	}
	seen := map[string]bool{}
	var out [][]bool
	add := func(a []bool) {
		if countOn(a) < c.cfg.MinOn {
			return
		}
		k := boolKey(a)
		if !seen[k] {
			seen[k] = true
			out = append(out, append([]bool(nil), a...))
		}
	}
	add(base)
	for j := 0; j < n; j++ {
		cand := append([]bool(nil), base...)
		if cand[j] {
			cand[j] = false
		} else if avail[j] {
			cand[j] = true
		} else {
			continue
		}
		add(cand)
	}
	allOn := make([]bool, n)
	for j := range allOn {
		allOn[j] = avail[j]
	}
	add(allOn)
	return out
}

// gammaCandidates is the quantized-simplex neighbourhood over the whole
// cluster — the joint γ space whose size grows combinatorially with n.
func (c *Controller) gammaCandidates(alpha []bool) [][]float64 {
	caps := make([]float64, len(c.specs))
	for j, s := range c.specs {
		caps[j] = s.SpeedFactor
	}
	seed, err := controller.SnapSimplex(caps, alpha, c.cfg.Quantum)
	if err != nil {
		return nil
	}
	cands := controller.SimplexNeighbours(seed, alpha, c.cfg.Quantum, c.cfg.NeighbourDepth)
	if prev, err := controller.SnapSimplex(c.prevGamma, alpha, c.cfg.Quantum); err == nil {
		cands = append(cands, controller.SimplexNeighbours(prev, alpha, c.cfg.Quantum, 1)...)
	}
	return cands
}

// freqCandidates enumerates joint frequency moves: each computer may move
// up to FreqSteps indices from its previous point; to keep the candidate
// count finite the moves are axis-aligned (one computer moves per
// candidate) plus the all-stay and all-max vectors.
func (c *Controller) freqCandidates(alpha []bool) [][]int {
	n := len(c.specs)
	stay := make([]int, n)
	maxv := make([]int, n)
	for j := range c.specs {
		stay[j] = clampIdx(c.prevFreq[j], len(c.specs[j].FrequenciesHz))
		maxv[j] = len(c.specs[j].FrequenciesHz) - 1
	}
	out := [][]int{append([]int(nil), stay...), maxv}
	for j := 0; j < n; j++ {
		if !alpha[j] {
			continue
		}
		for d := -c.cfg.FreqSteps; d <= c.cfg.FreqSteps; d++ {
			if d == 0 {
				continue
			}
			idx := stay[j] + d
			if idx < 0 || idx >= len(c.specs[j].FrequenciesHz) {
				continue
			}
			cand := append([]int(nil), stay...)
			cand[j] = idx
			out = append(out, cand)
		}
	}
	return out
}

// Overhead reports accumulated overhead counters.
func (c *Controller) Overhead() (explored, decisions int, compute time.Duration) {
	return c.explored, c.decisions, c.computeTime
}

func countOn(a []bool) int {
	n := 0
	for _, v := range a {
		if v {
			n++
		}
	}
	return n
}

func boolKey(a []bool) string {
	buf := make([]byte, len(a))
	for i, v := range a {
		if v {
			buf[i] = 1
		}
	}
	return string(buf)
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
