package central

import (
	"math/rand"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// TestRunWithFailurePlan exercises scenario failure injection in the flat
// controller: failures must change the run, repairs must let the
// controller recover, out-of-range entries are skipped, and the run stays
// deterministic per seed.
func TestRunWithFailurePlan(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		{Name: "M1", Computers: testSpecs(3)},
	}}
	trace := series.New(0, 30, 40)
	for i := range trace.Values {
		trace.Values[i] = 600
	}
	storeCfg := workload.DefaultStoreConfig()
	storeCfg.Objects = 300
	storeCfg.PopularCount = 30
	newStore := func() *workload.Store {
		s, err := workload.NewStore(rand.New(rand.NewSource(2)), storeCfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cfg := DefaultRunnerConfig()
	span := trace.End() - trace.Start
	cfg.Failures = []workload.FailureEvent{
		{At: 0.3 * span, Module: 0, Comp: 0},
		{At: 0.3 * span, Module: 0, Comp: 1},
		{At: 0.7 * span, Module: 0, Comp: 0, Repair: true},
		{At: 0.7 * span, Module: 0, Comp: 1, Repair: true},
		{At: 0.3 * span, Module: 5, Comp: 0}, // skipped
	}
	res, err := Run(spec, trace, newStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	res2, err := Run(spec, trace, newStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != res2.Energy || res.Completed != res2.Completed || res.Dropped != res2.Dropped {
		t.Errorf("failure-plan run not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
			res.Energy, res.Completed, res.Dropped, res2.Energy, res2.Completed, res2.Dropped)
	}
	cfg.Failures = nil
	clean, err := Run(spec, trace, newStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Energy == res.Energy && clean.Completed == res.Completed {
		t.Error("failure plan had no observable effect on the run")
	}
}
