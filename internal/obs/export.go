// Exporters for a recorded window: JSON Lines for programmatic
// consumers and Chrome trace_event JSON for chrome://tracing and
// Perfetto (ui.perfetto.dev).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
)

// WriteJSONL writes one JSON object per record, one record per line
// (the field layout is Record's json tags; levels render as names).
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("obs: jsonl record %d: %w", i, err)
		}
	}
	return nil
}

// traceEvent is one entry of the Chrome trace_event JSON array. Ts and
// Dur are microseconds. Ph "X" is a complete duration slice, "C" a
// counter sample, "M" process/thread metadata.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the trace format, which lets
// us name the time unit alongside the events.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders a recorded window as Chrome trace_event JSON on a
// simulated-time axis: tick k lands at k*periodSeconds. Process 0 holds
// the engine tick track and the L2 controller; process i+1 holds module
// i's L1 track and one L0 track per computer. Decision latencies become
// slice durations (real decide time painted onto sim time, so a 2 ms
// decide inside a 30 s period renders as a sliver at the period start);
// chosen γ shares, frequency indices and operational counts become
// counter tracks. Load the file in chrome://tracing or ui.perfetto.dev.
func WriteTrace(w io.Writer, recs []Record, periodSeconds float64) error {
	if periodSeconds <= 0 {
		return fmt.Errorf("obs: trace period %g s, need > 0", periodSeconds)
	}
	tf := traceFile{DisplayTimeUnit: "ms"}
	usPerTick := periodSeconds * 1e6
	meta := func(pid, tid int, key, name string) {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	named := map[[3]int]bool{} // {pid, tid, isThread} already labeled
	ensure := func(pid, tid int, proc, thread string) {
		if !named[[3]int{pid, -1, 0}] {
			named[[3]int{pid, -1, 0}] = true
			meta(pid, 0, "process_name", proc)
		}
		if !named[[3]int{pid, tid, 1}] {
			named[[3]int{pid, tid, 1}] = true
			meta(pid, tid, "thread_name", thread)
		}
	}
	durUS := func(ns int64) float64 {
		us := float64(ns) / 1e3
		if us < 1 {
			us = 1 // sub-µs decides still get a visible slice
		}
		return us
	}
	for _, rec := range recs {
		ts := float64(rec.Tick) * usPerTick
		switch {
		case rec.Level == LevelTick:
			ensure(0, 0, "cluster", "engine tick")
			name := "tick"
			if rec.QoS {
				name = "tick (QoS violation)"
			}
			tf.TraceEvents = append(tf.TraceEvents,
				traceEvent{Name: name, Ph: "X", Ts: ts, Dur: usPerTick, Pid: 0, Tid: 0,
					Args: map[string]any{"decideNs": rec.DecideNs, "meanResponse": rec.Resp, "qosViolation": rec.QoS}},
				traceEvent{Name: "mean response (s)", Ph: "C", Ts: ts, Pid: 0,
					Args: map[string]any{"resp": rec.Resp}},
			)
		case rec.Level == LevelL2 && rec.Module < 0:
			ensure(0, 1, "cluster", "L2 decide")
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "L2 decide", Ph: "X", Ts: ts, Dur: durUS(rec.DecideNs), Pid: 0, Tid: 1,
				Args: map[string]any{"explored": rec.Explored, "cost": rec.Cost, "decideNs": rec.DecideNs},
			})
		case rec.Level == LevelL2:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: fmt.Sprintf("gamma module %d", rec.Module), Ph: "C", Ts: ts, Pid: 0,
				Args: map[string]any{"gamma": rec.Gamma},
			})
		case rec.Level == LevelL1 && rec.Comp < 0:
			pid := int(rec.Module) + 1
			ensure(pid, 0, fmt.Sprintf("module %d", rec.Module), "L1 decide")
			tf.TraceEvents = append(tf.TraceEvents,
				traceEvent{Name: "L1 decide", Ph: "X", Ts: ts, Dur: durUS(rec.DecideNs), Pid: pid, Tid: 0,
					Args: map[string]any{"explored": rec.Explored, "cost": rec.Cost,
						"decideNs": rec.DecideNs, "alphaMask": rec.Alpha}},
				traceEvent{Name: "operational computers", Ph: "C", Ts: ts, Pid: pid,
					Args: map[string]any{"on": bits.OnesCount64(rec.Alpha)}},
			)
		case rec.Level == LevelL1:
			pid := int(rec.Module) + 1
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: fmt.Sprintf("gamma computer %d", rec.Comp), Ph: "C", Ts: ts, Pid: pid,
				Args: map[string]any{"gamma": rec.Gamma},
			})
		case rec.Level == LevelL0:
			pid := int(rec.Module) + 1
			tid := int(rec.Comp) + 1
			ensure(pid, tid, fmt.Sprintf("module %d", rec.Module), fmt.Sprintf("L0 computer %d", rec.Comp))
			tf.TraceEvents = append(tf.TraceEvents,
				traceEvent{Name: "L0 decide", Ph: "X", Ts: ts, Dur: durUS(rec.DecideNs), Pid: pid, Tid: tid,
					Args: map[string]any{"freqIdx": rec.FreqIdx, "explored": rec.Explored,
						"cost": rec.Cost, "decideNs": rec.DecideNs}},
				traceEvent{Name: fmt.Sprintf("freq idx computer %d", rec.Comp), Ph: "C", Ts: ts, Pid: pid,
					Args: map[string]any{"freq": rec.FreqIdx}},
			)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}
