package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewRecorder(-5); err == nil {
		t.Fatal("negative capacity accepted")
	}
	r, err := NewRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", r.Capacity())
	}
}

// A nil *Recorder is the disabled recorder: every method must be safe
// and report emptiness.
func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.SetTick(7)
	r.Record(Record{Level: LevelL0})
	if r.Tick() != 0 || r.Total() != 0 || r.Len() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder not empty")
	}
	if got := r.Window(nil, 10); len(got) != 0 {
		t.Fatalf("nil window returned %d records", len(got))
	}
	if got, next := r.Since(nil, 0); len(got) != 0 || next != 0 {
		t.Fatalf("nil Since returned %d records, cursor %d", len(got), next)
	}
}

func TestRecorderTickStampAndWraparound(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 6; k++ {
		r.SetTick(k)
		r.Record(Record{Level: LevelL0, Module: 0, Comp: int16(k)})
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4 (ring capacity)", r.Len())
	}
	win := r.Window(nil, 0)
	if len(win) != 4 {
		t.Fatalf("window = %d records, want 4", len(win))
	}
	// Oldest first, and the stamped tick overrides whatever the caller set.
	for i, rec := range win {
		want := int64(i + 2) // records 0 and 1 were overwritten
		if rec.Tick != want || rec.Comp != int16(want) {
			t.Fatalf("window[%d] = tick %d comp %d, want %d", i, rec.Tick, rec.Comp, want)
		}
	}
	if got := r.Window(nil, 2); len(got) != 2 || got[0].Tick != 4 {
		t.Fatalf("window(max=2) = %+v, want ticks 4,5", got)
	}
}

func TestRecorderSinceCursor(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	write := func(n int) {
		for i := 0; i < n; i++ {
			r.Record(Record{Level: LevelL1})
		}
	}
	write(3)
	got, cur := r.Since(nil, 0)
	if len(got) != 3 || cur != 3 {
		t.Fatalf("first read: %d records, cursor %d", len(got), cur)
	}
	got, cur = r.Since(got[:0], cur)
	if len(got) != 0 || cur != 3 {
		t.Fatalf("idle read: %d records, cursor %d", len(got), cur)
	}
	// Overflow the ring between reads: the overwritten records are gone,
	// the survivors arrive exactly once.
	write(12)
	got, cur = r.Since(got[:0], cur)
	if len(got) != 8 || cur != 15 {
		t.Fatalf("overflow read: %d records, cursor %d; want 8, 15", len(got), cur)
	}
}

// Concurrent writers (the parallel L1 fan-out) must be race-clean and
// lose nothing when the ring is large enough.
func TestRecorderConcurrentWriters(t *testing.T) {
	const writers, each = 8, 500
	r, err := NewRecorder(writers * each)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(Record{Level: LevelL1, Module: int16(w), Explored: int32(i)})
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*each {
		t.Fatalf("total = %d, want %d", r.Total(), writers*each)
	}
	counts := make(map[int16]int)
	for _, rec := range r.Window(nil, 0) {
		counts[rec.Module]++
	}
	for w := int16(0); w < writers; w++ {
		if counts[w] != each {
			t.Fatalf("writer %d: %d records retained, want %d", w, counts[w], each)
		}
	}
}

// The recorder hot path must not allocate: the whole point of the ring
// is that enabling telemetry keeps the engine's 0-alloc decision tick.
func TestRecordZeroAlloc(t *testing.T) {
	r, err := NewRecorder(64)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Level: LevelL0, Module: 1, Comp: 2, FreqIdx: 3, Explored: 99, Cost: 1.5}
	allocs := testing.AllocsPerRun(1000, func() {
		r.SetTick(3)
		r.Record(rec)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per call, want 0", allocs)
	}
	var nilRec *Recorder
	allocs = testing.AllocsPerRun(1000, func() {
		if nilRec.Enabled() {
			t.Fatal("nil enabled")
		}
		nilRec.Record(rec)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v per call, want 0", allocs)
	}
}

func TestLevelTextRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelTick, LevelL0, LevelL1, LevelL2} {
		b, err := l.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Level
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Fatalf("round trip %v -> %s -> %v", l, b, back)
		}
	}
	var l Level
	if err := l.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("bogus level parsed")
	}
}

func TestWriteJSONL(t *testing.T) {
	recs := []Record{
		{Tick: 0, Level: LevelTick, Module: -1, Comp: -1, FreqIdx: -1, Resp: 2.5, QoS: true, DecideNs: 1200},
		{Tick: 1, Level: LevelL0, Module: 0, Comp: 2, FreqIdx: 3, Explored: 42, Cost: 0.75},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if lines[0]["level"] != "tick" || lines[0]["qosViolation"] != true {
		t.Fatalf("tick line = %v", lines[0])
	}
	if lines[1]["level"] != "l0" || lines[1]["freqIdx"] != float64(3) {
		t.Fatalf("l0 line = %v", lines[1])
	}
}

func TestWriteTrace(t *testing.T) {
	if err := WriteTrace(&bytes.Buffer{}, nil, 0); err == nil {
		t.Fatal("period 0 accepted")
	}
	recs := []Record{
		{Tick: 0, Level: LevelTick, Module: -1, Comp: -1, DecideNs: 5000, Resp: 1.2},
		{Tick: 0, Level: LevelL2, Module: -1, Comp: -1, DecideNs: 900, Explored: 12, Cost: 3},
		{Tick: 0, Level: LevelL2, Module: 1, Gamma: 0.4},
		{Tick: 0, Level: LevelL1, Module: 1, Comp: -1, DecideNs: 800, Explored: 31, Alpha: 0b1011, Cost: 2},
		{Tick: 0, Level: LevelL1, Module: 1, Comp: 0, On: true, Gamma: 0.5},
		{Tick: 1, Level: LevelL0, Module: 1, Comp: 0, FreqIdx: 2, DecideNs: 300, Explored: 9},
		{Tick: 1, Level: LevelTick, Module: -1, Comp: -1, QoS: true, Resp: 9.9},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs, 30); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if tf.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.Unit)
	}
	byPhase := map[string]int{}
	sawQoS, sawL0Ts := false, math.NaN()
	for _, ev := range tf.TraceEvents {
		ph, _ := ev["ph"].(string)
		byPhase[ph]++
		name, _ := ev["name"].(string)
		if name == "tick (QoS violation)" {
			sawQoS = true
		}
		if name == "L0 decide" {
			sawL0Ts = ev["ts"].(float64)
		}
	}
	if byPhase["M"] == 0 || byPhase["X"] == 0 || byPhase["C"] == 0 {
		t.Fatalf("phase counts %v: want metadata, slices and counters", byPhase)
	}
	// Tick 1 lands one period (30 s = 3e7 µs) into the trace.
	if sawL0Ts != 3e7 {
		t.Fatalf("L0 slice ts = %v, want 3e7 µs", sawL0Ts)
	}
	if !sawQoS {
		t.Fatal("QoS-violating tick not flagged in trace")
	}
}

func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile("")
	if err != nil || stop() != nil {
		t.Fatalf("empty cpu path: %v", err)
	}
	if err := WriteHeapProfile(""); err != nil {
		t.Fatalf("empty heap path: %v", err)
	}
	cpu := filepath.Join(dir, "cpu.out")
	stop, err = StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = math.Sqrt(float64(i))
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s empty or missing (err %v)", p, err)
		}
	}
	if _, err := StartCPUProfile(filepath.Join(dir, "no/such/dir/x")); err == nil {
		t.Fatal("unwritable cpu path accepted")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no/such/dir/x")); err == nil {
		t.Fatal("unwritable heap path accepted")
	}
}
