// Package obs is the observability layer: a fixed-size, allocation-free
// flight recorder for per-decision telemetry, exporters for the recorded
// window (JSON Lines and Chrome trace_event), and small profiling
// helpers shared by the CLIs.
//
// The flight recorder follows the avionics model: a bounded ring of the
// most recent decision records, cheap enough to leave on in production
// and empty-cost when off. Every hook is nil-checkable — a nil *Recorder
// is a valid, disabled recorder, so instrumented code paths carry a
// single pointer test and no allocation. Telemetry observes, never
// steers: decisions are bit-identical with recording on or off (pinned
// by the recorder equivalence suites in internal/controller and
// internal/core).
//
// Writers may be concurrent (the L1 planning fan-out decides modules in
// parallel); each Record call claims a distinct slot with one atomic
// add. Readers must be externally synchronized with writers — the fleet
// reads on the tenant's home shard, the CLIs read after the run.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Level says which layer of the hierarchy a record describes.
type Level uint8

const (
	// LevelTick is a per-tick engine record: whole-decision latency and
	// the interval's QoS outcome.
	LevelTick Level = iota
	// LevelL0 is a per-computer frequency decision (one per L0 tick).
	LevelL0
	// LevelL1 is a per-module power-state/load-split decision boundary.
	LevelL1
	// LevelL2 is a cluster-level load-distribution decision boundary.
	LevelL2
)

var levelNames = [...]string{"tick", "l0", "l1", "l2"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// MarshalText renders the level as its lowercase name, so JSON exports
// say "l1", not 2.
func (l Level) MarshalText() ([]byte, error) {
	return []byte(l.String()), nil
}

// UnmarshalText parses the form MarshalText produced.
func (l *Level) UnmarshalText(b []byte) error {
	for i, name := range levelNames {
		if string(b) == name {
			*l = Level(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown level %q", b)
}

// Record is one flight-recorder entry. It is deliberately flat — no
// slices, no pointers — so writing one is a struct copy into the ring.
// Fields that don't apply to a record's level keep their zero value
// (index fields use -1 for "not applicable"):
//
//   - tick records (LevelTick): DecideNs spans the whole hierarchical
//     decision, Resp is the interval's mean response time and QoS flags a
//     violation of the configured target. Degraded flags a tick the
//     policy decided via its deterministic fallback path (decision
//     budget exhausted or a recovered controller panic); Stale counts
//     modules whose observation the engine sanitizer held at the last
//     good value this tick.
//   - L0 records: Module/Comp locate the computer, FreqIdx is the chosen
//     frequency index, Explored/Cost/DecideNs describe the lookahead
//     search.
//   - L1 summary records (Comp == -1): Alpha packs the chosen on/off
//     mask (bit j = computer j operational; computers beyond 63 are not
//     represented), Explored/Cost/DecideNs describe the search. Each
//     summary is followed by one detail record per computer (Comp == j)
//     carrying that computer's On state and Gamma share.
//   - L2 summary records (Module == -1): Explored/Cost/DecideNs for the
//     cluster-level search, followed by one detail record per module
//     (Module == i) carrying the module's Gamma share.
type Record struct {
	Tick     int64   `json:"tick"`
	Level    Level   `json:"level"`
	Module   int16   `json:"module"`
	Comp     int16   `json:"comp"`
	FreqIdx  int16   `json:"freqIdx"`
	On       bool    `json:"on"`
	QoS      bool    `json:"qosViolation"`
	Explored int32   `json:"explored"`
	DecideNs int64   `json:"decideNs"`
	Alpha    uint64  `json:"alpha"`
	Gamma    float64 `json:"gamma"`
	Cost     float64 `json:"cost"`
	Resp     float64 `json:"resp"`
	Degraded bool    `json:"degraded,omitempty"`
	Stale    int16   `json:"stale,omitempty"`
}

// Recorder is a fixed-size ring of the most recent Records. The zero
// value is not usable; a nil *Recorder is — every method no-ops (or
// returns emptiness) on a nil receiver, which is how instrumented code
// stays allocation-free when telemetry is off.
type Recorder struct {
	ring []Record
	head atomic.Uint64 // total records ever written
	tick atomic.Int64  // current engine tick, stamped onto writes
}

// NewRecorder returns a recorder retaining the most recent capacity
// records.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("obs: recorder capacity %d, need >= 1", capacity)
	}
	return &Recorder{ring: make([]Record, capacity)}, nil
}

// Enabled reports whether records will actually be retained. It is the
// one-branch guard instrumented code uses before building a Record.
func (r *Recorder) Enabled() bool { return r != nil }

// Capacity returns the ring size (0 for a nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// SetTick sets the tick stamped onto subsequent records. The engine
// calls it once per tick, before the policy decides, so controllers
// never need the tick threaded through their signatures.
//
//hpm:hotpath
func (r *Recorder) SetTick(tick int64) {
	if r == nil {
		return
	}
	r.tick.Store(tick)
}

// Tick returns the currently stamped tick.
func (r *Recorder) Tick() int64 {
	if r == nil {
		return 0
	}
	return r.tick.Load()
}

// Record appends rec to the ring, stamping the current tick over
// rec.Tick and overwriting the oldest entry once the ring is full. Safe
// for concurrent writers; never allocates.
//
//hpm:hotpath
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	rec.Tick = r.tick.Load()
	seq := r.head.Add(1) - 1
	r.ring[seq%uint64(len(r.ring))] = rec
}

// Total returns how many records were ever written, including ones the
// ring has since overwritten. It is also the cursor one past the newest
// record (see Since).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Len returns how many records the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	total := r.head.Load()
	if total > uint64(len(r.ring)) {
		return len(r.ring)
	}
	return int(total)
}

// Window appends the newest max retained records to dst, oldest first,
// and returns the extended slice. max <= 0 means the whole retained
// window. Callers must not race Window with writers.
func (r *Recorder) Window(dst []Record, max int) []Record {
	if r == nil {
		return dst
	}
	n := r.Len()
	if max > 0 && max < n {
		n = max
	}
	recs, _ := r.Since(dst, r.head.Load()-uint64(n))
	return recs
}

// Since appends every retained record with sequence number >= cursor to
// dst, oldest first, and returns the extended slice plus the next
// cursor (pass it back to read only newer records next time). Records
// overwritten before the read are silently gone — a scraper polling
// Since sees gaps, never duplicates. Callers must not race Since with
// writers.
func (r *Recorder) Since(dst []Record, cursor uint64) ([]Record, uint64) {
	if r == nil {
		return dst, 0
	}
	total := r.head.Load()
	start := cursor
	if oldest := total - uint64(r.Len()); start < oldest {
		start = oldest
	}
	for seq := start; seq < total; seq++ {
		dst = append(dst, r.ring[seq%uint64(len(r.ring))])
	}
	return dst, total
}
