// Profiling helpers shared by the CLIs' -cpuprofile/-memprofile flags,
// so each main wires two flags and two calls instead of re-rolling the
// pprof file dance.
package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a
// stop function that ends the profile and closes the file. An empty
// path is a no-op (the returned stop still must be safe to call).
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// objects, not garbage awaiting collection) and writes the heap profile
// to path. An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
