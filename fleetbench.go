package hierctl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/fleet"
	"hierctl/internal/workload"
)

// fleetScaleTenantConfig is the fleet benchmark's per-tenant shape: a
// 10k-tenant node hosts many small, lightly loaded hierarchies, not ten
// thousand copies of the §4.3 benchmark module. Each tenant manages a
// 2-computer module under a greedy (horizon-1) L0, a coarse learning
// grid, and the paper's multi-rate cadence stretched to T_L1 = 240 s —
// the observe→decide loop this leaves is what has to be cheap for fleet
// scale (the tick bench's fleet-64 row keeps the heavier §4.3 module as
// the per-tenant depth benchmark; this one measures breadth).
func fleetScaleTenantConfig(seed int64, dir string) (fleet.TenantConfig, error) {
	module, err := cluster.ScaledModule("M1", "M1", 2)
	if err != nil {
		return fleet.TenantConfig{}, err
	}
	storeCfg := workload.DefaultStoreConfig()
	storeCfg.Objects = 100
	storeCfg.PopularCount = 10

	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Parallelism = 1 // shards provide the parallelism, not the tenants
	cfg.RecordFrequencies = false
	cfg.L0.Horizon = 1
	cfg.L1.PeriodSeconds = 480
	cfg.L2.PeriodSeconds = 960
	cfg.GMap = controller.GMapConfig{
		QMax: 100, QStep: 50,
		LambdaMax: 100, LambdaStep: 50,
		CMin: 0.016, CMax: 0.02, CStep: 0.004,
		SubSteps: 2,
	}
	cfg.ModuleSim = controller.ModuleSimConfig{
		QLevels:      []float64{0, 50},
		LambdaLevels: []float64{0, 30, 60, 120, 200},
		CLevels:      []float64{0.018},
		Tree:         approx.TreeConfig{MaxDepth: 6, MinLeaf: 1},
	}
	cfg.ArtifactDir = dir // identical hardware: learn once, load the rest
	return fleet.TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{module}},
		Core:       cfg,
		Store:      storeCfg,
		StoreSeed:  seed,
		BinSeconds: 30,
	}, nil
}

// FleetBenchRow is one scale point of the fleet benchmark: n tenants
// ingesting `bins` bins each through ObserveBatch, followed by a full
// snapshot and a streaming restore of the fleet.
//
// TenantTicksPerSec, NsPerTick, CreateSeconds and the latency columns
// are wall-clock and vary run to run; Tenants, Bins, CountPerBin and
// SnapshotBytes are deterministic and form the projection CI diffs
// across regenerations (snapshot bytes are reproducible because the
// snapshot encoder sorts every map — see TestSnapshotBytesDeterministic).
type FleetBenchRow struct {
	Tenants int `json:"tenants"`
	// Bins is the number of observation bins ingested per tenant in the
	// measured window (one batched round per bin).
	Bins int `json:"bins"`
	// CountPerBin is the arrivals per tenant bin. The benchmark holds the
	// aggregate offered load constant across scales — many small tenants
	// instead of few big ones — so the scale rows measure fleet capacity,
	// not shrinking simulation work per row.
	CountPerBin       float64 `json:"countPerBin"`
	TenantTicksPerSec float64 `json:"tenantTicksPerSec"`
	NsPerTick         float64 `json:"nsPerTick"`
	// CreateSeconds is the wall-clock cost of standing up all n tenants
	// (artifact-cached: the first tenant learns, the rest load).
	CreateSeconds  float64 `json:"createSeconds"`
	SnapshotMillis float64 `json:"snapshotMillis"`
	RestoreMillis  float64 `json:"restoreMillis"`
	SnapshotBytes  int64   `json:"snapshotBytes"`
}

// FleetBenchChecks are the correctness pins the generation verifies on
// every run: false in a committed snapshot (or a CI regeneration) means
// the batched ingest or the snapshot subsystem broke equivalence.
type FleetBenchChecks struct {
	// BatchEqualsSequential: a fleet fed through ObserveBatch produced
	// bit-identical decisions to a twin fed the same bins one Observe at
	// a time (verified at the smallest scale).
	BatchEqualsSequential bool `json:"batchEqualsSequential"`
	// RestoreEqualsReplay: at every scale, a fleet restored from the
	// snapshot produced bit-identical next-bin decisions to the original.
	RestoreEqualsReplay bool `json:"restoreEqualsReplay"`
}

// FleetBenchSnapshot is the BENCH_fleet.json payload.
type FleetBenchSnapshot struct {
	// AggregateCountPerRound is the constant total arrivals per batched
	// round shared by every scale row (tenants × countPerBin).
	AggregateCountPerRound float64 `json:"aggregateCountPerRound"`
	// ComputersPerTenant records the scale-tenant shape (see
	// fleetScaleTenantConfig) so the rows are read against the right
	// per-tenant cluster size.
	ComputersPerTenant int              `json:"computersPerTenant"`
	Rows               []FleetBenchRow  `json:"rows"`
	Checks             FleetBenchChecks `json:"checks"`
}

// fleetBenchAggregate is the constant offered load per round: 64
// tenants at 100 arrivals per bin, redistributed across more, smaller
// tenants as the scale grows. Holding the aggregate constant keeps the
// rows comparable — what a scale row measures is the per-tenant
// control-loop overhead (observe, decide, snapshot bookkeeping), not
// shrinking request-synthesis work per row.
const fleetBenchAggregate = 64 * 100

// RunFleetBench measures fleet capacity at the given tenant scales:
// batched ingest throughput (tenant-ticks/sec), tenant creation cost,
// and snapshot/restore latency, holding the aggregate offered load per
// round constant across scales. The generation doubles as an
// equivalence check (see FleetBenchChecks); bins sets the measured
// rounds per scale.
func RunFleetBench(bins int, scales []int) (FleetBenchSnapshot, error) {
	if bins < 1 {
		return FleetBenchSnapshot{}, fmt.Errorf("hierctl: fleet bench needs >= 1 bin, got %d", bins)
	}
	if len(scales) == 0 {
		return FleetBenchSnapshot{}, fmt.Errorf("hierctl: fleet bench needs >= 1 tenant scale")
	}
	for _, n := range scales {
		if n < 1 {
			return FleetBenchSnapshot{}, fmt.Errorf("hierctl: fleet bench scale %d < 1", n)
		}
	}
	// A fixed artifact-cache path (not MkdirTemp) keeps the embedded
	// ArtifactDir — and with it the snapshot bytes — identical across
	// regenerations, and lets back-to-back runs reuse the learned maps.
	dir := filepath.Join(os.TempDir(), "hpm-fleetbench-artifacts")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return FleetBenchSnapshot{}, err
	}
	snap := FleetBenchSnapshot{
		AggregateCountPerRound: fleetBenchAggregate,
		ComputersPerTenant:     2,
		Checks:                 FleetBenchChecks{BatchEqualsSequential: true, RestoreEqualsReplay: true},
	}
	for si, n := range scales {
		row, restoreOK, batchOK, err := runFleetBenchScale(n, bins, fleetBenchAggregate/float64(n), dir, si == 0)
		if err != nil {
			return FleetBenchSnapshot{}, err
		}
		snap.Rows = append(snap.Rows, row)
		snap.Checks.RestoreEqualsReplay = snap.Checks.RestoreEqualsReplay && restoreOK
		if si == 0 {
			snap.Checks.BatchEqualsSequential = batchOK
		}
	}
	return snap, nil
}

// newBenchFleet stands up n bench tenants on a fleet whose shard queues
// are sized to accept one whole-fleet batch.
func newBenchFleet(n int, dir string) (*fleet.Fleet, []string, error) {
	f := fleet.New(fleet.Config{QueueDepth: n})
	ids := make([]string, n)
	for i := range ids {
		tc, err := fleetScaleTenantConfig(int64(i+1), dir)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		ids[i] = fmt.Sprintf("t%05d", i)
		if err := f.CreateTenant(ids[i], tc); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return f, ids, nil
}

// observeRound pushes one bin of count arrivals to every tenant in a
// single ObserveBatch call and returns the per-entry decisions.
func observeRound(f *fleet.Fleet, entries []fleet.BatchEntry) ([]fleet.BatchResult, error) {
	results, err := f.ObserveBatch(entries)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("hierctl: fleet bench tenant %s: %w", res.Tenant, res.Err)
		}
	}
	return results, nil
}

func runFleetBenchScale(n, bins int, count float64, dir string, verifySequential bool) (FleetBenchRow, bool, bool, error) {
	createStart := time.Now()
	f, ids, err := newBenchFleet(n, dir)
	if err != nil {
		return FleetBenchRow{}, false, false, err
	}
	defer f.Close()
	createSeconds := time.Since(createStart).Seconds()

	entries := make([]fleet.BatchEntry, n)
	for i := range entries {
		entries[i] = fleet.BatchEntry{Tenant: ids[i], Counts: []float64{count}}
	}
	// Batched decisions are retained only when the sequential twin will
	// need them for the equivalence check.
	var rounds [][]fleet.BatchResult
	start := time.Now()
	for r := 0; r < bins; r++ {
		results, err := observeRound(f, entries)
		if err != nil {
			return FleetBenchRow{}, false, false, err
		}
		if verifySequential {
			rounds = append(rounds, results)
		}
	}
	elapsed := time.Since(start)
	ticks := n * bins

	batchOK := true
	if verifySequential {
		g, gids, err := newBenchFleet(n, dir)
		if err != nil {
			return FleetBenchRow{}, false, false, err
		}
		for r := 0; r < bins && batchOK; r++ {
			for i := range gids {
				dec, err := g.Observe(gids[i], count)
				if err != nil {
					g.Close()
					return FleetBenchRow{}, false, false, err
				}
				batched := rounds[r][i].LastDecision
				if batched == nil || !reflect.DeepEqual(*batched, dec) {
					batchOK = false
					break
				}
			}
		}
		g.Close()
	}

	var buf bytes.Buffer
	snapStart := time.Now()
	if err := f.Snapshot(&buf); err != nil {
		return FleetBenchRow{}, false, false, err
	}
	snapshotMillis := float64(time.Since(snapStart).Nanoseconds()) / 1e6

	restored := fleet.New(fleet.Config{QueueDepth: n})
	defer restored.Close()
	restoreStart := time.Now()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		return FleetBenchRow{}, false, false, err
	}
	restoreMillis := float64(time.Since(restoreStart).Nanoseconds()) / 1e6

	// The restored fleet must continue exactly where the original left
	// off: one more bin on both, decisions bit-identical.
	restoreOK := true
	orig, err := observeRound(f, entries)
	if err != nil {
		return FleetBenchRow{}, false, false, err
	}
	rest, err := observeRound(restored, entries)
	if err != nil {
		return FleetBenchRow{}, false, false, err
	}
	for i := range orig {
		a, b := orig[i].LastDecision, rest[i].LastDecision
		if a == nil || b == nil || !reflect.DeepEqual(*a, *b) {
			restoreOK = false
			break
		}
	}

	return FleetBenchRow{
		Tenants:           n,
		Bins:              bins,
		CountPerBin:       count,
		TenantTicksPerSec: float64(ticks) / elapsed.Seconds(),
		NsPerTick:         float64(elapsed.Nanoseconds()) / float64(ticks),
		CreateSeconds:     createSeconds,
		SnapshotMillis:    snapshotMillis,
		RestoreMillis:     restoreMillis,
		SnapshotBytes:     int64(buf.Len()),
	}, restoreOK, batchOK, nil
}
