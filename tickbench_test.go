package hierctl

// Pins for the decision-tick benchmark harness behind BENCH_tick.json:
// the rows exist, the deterministic columns hold their steady-state
// values (zero allocations for L0 and the table probe, the returned
// decision's two slices for L1/L2), and bad inputs error.

import "testing"

func TestRunTickBenchValidation(t *testing.T) {
	if _, err := RunTickBench(0, 4); err == nil {
		t.Error("0 decisions: want error")
	}
	if _, err := RunTickBench(4, 0); err == nil {
		t.Error("0 tenants: want error")
	}
}

func TestRunTickBenchRowsAndInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("tick bench learns abstraction maps")
	}
	snap, err := RunTickBench(48, 4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Decisions != 48 || snap.Tenants != 4 {
		t.Fatalf("snapshot config %d/%d, want 48/4", snap.Decisions, snap.Tenants)
	}
	rows := map[string]TickBenchRow{}
	for _, r := range snap.Rows {
		rows[r.Level] = r
	}
	for _, level := range []string{"L0-decide", "L1-decide", "L2-decide", "table-probe", "fleet-4"} {
		if _, ok := rows[level]; !ok {
			t.Fatalf("missing row %q (have %v)", level, snap.Rows)
		}
	}
	// The allocation-free invariants the PR pins: L0 decides and table
	// probes allocate nothing; L1/L2 allocate only the returned
	// decision's slices.
	for level, wantAllocs := range map[string]float64{
		"L0-decide": 0, "table-probe": 0, "L1-decide": 2, "L2-decide": 2,
	} {
		r := rows[level]
		if r.AllocsPerDecision != wantAllocs {
			t.Errorf("%s: %v allocs/decision, want %v", level, r.AllocsPerDecision, wantAllocs)
		}
		if r.NsPerDecision <= 0 || r.Decisions <= 0 {
			t.Errorf("%s: implausible row %+v", level, r)
		}
	}
	fleet := rows["fleet-4"]
	if fleet.TenantTicksPerSec <= 0 {
		t.Errorf("fleet row missing throughput: %+v", fleet)
	}
	if fleet.AllocsPerDecision != -1 || fleet.BytesPerDecision != -1 {
		t.Errorf("fleet row should exclude byte/alloc columns, got %+v", fleet)
	}
}
