package hierctl

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/fleet"
	"hierctl/internal/par"
	"hierctl/internal/workload"
)

// TickBenchRow is one hot-path measurement of the decision tick: mean
// wall-clock nanoseconds, heap bytes and heap allocations per decision
// (per probe for the table row, per tenant tick for the fleet row).
//
// NsPerDecision is a wall-clock measurement and varies run to run;
// BytesPerDecision and AllocsPerDecision are deterministic in steady
// state — the warm controllers allocate a fixed handful of slices per
// decision — and are the columns CI diffs across regenerations. Both are
// rounded to the nearest integer so a stray runtime allocation during the
// measured window cannot flap the committed numbers.
type TickBenchRow struct {
	// Level identifies the hot path: "L0-decide", "L1-decide",
	// "L2-decide", "table-probe", or "fleet-<tenants>".
	Level             string  `json:"level"`
	Decisions         int     `json:"decisions"`
	NsPerDecision     float64 `json:"nsPerDecision"`
	BytesPerDecision  float64 `json:"bytesPerDecision"`
	AllocsPerDecision float64 `json:"allocsPerDecision"`
	// TenantTicksPerSec reports fleet throughput (fleet row only): one
	// tick is one T_L0 control period of one tenant. The fleet row's
	// byte/alloc columns are reported as -1: shard goroutines and
	// channels make its allocation counts scheduling-dependent, so they
	// are excluded from the deterministic projection.
	TenantTicksPerSec float64 `json:"tenantTicksPerSec,omitempty"`
}

// TickBenchSnapshot is the BENCH_tick.json payload: the configuration the
// decision ticks were driven over and one row per hot path.
type TickBenchSnapshot struct {
	// Computers is the §4.3 module the L0/L1 rows decide for.
	Computers []string       `json:"computers"`
	Decisions int            `json:"decisions"`
	Tenants   int            `json:"tenants"`
	Rows      []TickBenchRow `json:"rows"`
}

// measureTick warms fn, then measures n iterations under GOMAXPROCS(1)
// with GC-stat deltas: allocations come from runtime.MemStats.Mallocs the
// way testing.AllocsPerRun counts them.
func measureTick(level string, warmup, n int, fn func(i int) error) (TickBenchRow, error) {
	for i := 0; i < warmup; i++ {
		if err := fn(i); err != nil {
			return TickBenchRow{}, fmt.Errorf("hierctl: tick bench %s warmup: %w", level, err)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(warmup + i); err != nil {
			return TickBenchRow{}, fmt.Errorf("hierctl: tick bench %s: %w", level, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return TickBenchRow{
		Level:             level,
		Decisions:         n,
		NsPerDecision:     float64(elapsed.Nanoseconds()) / float64(n),
		BytesPerDecision:  math.Round(float64(after.TotalAlloc-before.TotalAlloc) / float64(n)),
		AllocsPerDecision: math.Round(float64(after.Mallocs-before.Mallocs) / float64(n)),
	}, nil
}

// tickGMapConfig is the learning grid behind the L1/table rows: coarse
// enough that the harness spends its time in decisions, not offline
// learning. The grid only changes which averages the cells hold — the
// candidate machinery and probe costs being measured are grid-independent.
func tickGMapConfig() controller.GMapConfig {
	return controller.GMapConfig{
		QMax: 200, QStep: 25,
		LambdaMax: 120, LambdaStep: 15,
		CMin: 0.014, CMax: 0.022, CStep: 0.004,
		SubSteps: 2,
	}
}

// learnTickGMaps learns abstraction maps for the first n catalogue
// computers (C1..Cn) on the tick grid.
func learnTickGMaps(n int) ([]*controller.GMap, error) {
	l0cfg := controller.DefaultL0Config()
	l0cfg.Horizon = 2 // learning sweep cost only; the maps stay §4.2-shaped
	gmaps := make([]*controller.GMap, n)
	for i := range gmaps {
		spec, err := cluster.StandardComputer(i, fmt.Sprintf("C%d", i+1))
		if err != nil {
			return nil, err
		}
		gmaps[i], err = controller.LearnGMap(l0cfg, spec, tickGMapConfig())
		if err != nil {
			return nil, err
		}
	}
	return gmaps, nil
}

// The driveTick* helpers set the i-th tick's observation into the
// caller's scratch and run one decision. RunTickBench and the
// BenchmarkTick* alarm wires in bench_test.go share them, so the
// committed snapshot and the -benchmem job measure the same steady
// state by construction.

func driveTickL0(l0 *controller.L0, lambda []float64, i int) error {
	lam := 40 + 30*math.Sin(float64(i)/9)
	lambda[0], lambda[1], lambda[2] = lam, lam+2, lam+4
	_, err := l0.DecideBanded(float64((i*7)%200), lambda, 8, 0.0175)
	return err
}

func driveTickL1(l1 *controller.L1, queues []float64, avail []bool, i int) error {
	lam := 60 + 40*math.Sin(float64(i)/9)
	for j := range queues {
		queues[j] = float64((i * (3 + 2*j)) % 80)
	}
	_, err := l1.Decide(controller.L1Observation{
		QueueLens: queues, LambdaHat: lam, Delta: 8, CHat: 0.0175, Available: avail,
	})
	return err
}

func driveTickL2(l2 *controller.L2, qavg, chat []float64, avail []bool, i int) error {
	lam := 200 + 100*math.Sin(float64(i)/9)
	for j := range qavg {
		qavg[j] = float64((i * (3 + 2*j)) % 40)
	}
	_, err := l2.Decide(controller.L2Observation{
		QAvg: qavg, LambdaHat: lam, Delta: 20, CHat: chat, Available: avail,
	})
	return err
}

func driveTickProbe(g *controller.GMap, scratch []float64, i int) error {
	_, _, _, _, err := g.EvaluateInto(scratch, float64(i%200), float64(i%100), 0.0175)
	return err
}

// RunTickBench measures the steady-state decision tick of every level of
// the hierarchy — L0 banded lookahead, L1 bounded (α, γ) search, L2
// simplex enumeration, the abstraction-map probe behind them, and the
// fleet's multi-tenant stepping throughput — and reports ns, bytes and
// allocations per decision. decisions sets the measured iteration count
// per row; tenants the fleet row's tenant count (a multiple of 4 keeps
// the shard load even). The workload mirrors the §4.3 runs: diurnal
// arrival forecasts with the uncertainty band, sweeping queue lengths.
func RunTickBench(decisions, tenants int) (TickBenchSnapshot, error) {
	if decisions < 1 {
		return TickBenchSnapshot{}, fmt.Errorf("hierctl: tick bench needs >= 1 decision, got %d", decisions)
	}
	if tenants < 1 {
		return TickBenchSnapshot{}, fmt.Errorf("hierctl: tick bench needs >= 1 tenant, got %d", tenants)
	}
	names := []string{"C1", "C2", "C3", "C4"}
	snap := TickBenchSnapshot{Computers: names, Decisions: decisions, Tenants: tenants}
	const warmup = 24

	// L0: the paper's C4 under the default §4.3 configuration.
	c4, err := cluster.StandardComputer(3, "C4")
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	l0, err := controller.NewL0(controller.DefaultL0Config(), c4)
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	lambda := make([]float64, 3)
	row, err := measureTick("L0-decide", warmup, decisions, func(i int) error {
		return driveTickL0(l0, lambda, i)
	})
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	snap.Rows = append(snap.Rows, row)

	// L1 over the C1..C4 abstraction maps (learned on the tick grid).
	gmaps, err := learnTickGMaps(len(names))
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	l1, err := controller.NewL1(controller.DefaultL1Config(), gmaps)
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	queues := make([]float64, len(names))
	avail := make([]bool, len(names))
	for j := range avail {
		avail[j] = true
	}
	row, err = measureTick("L1-decide", warmup, decisions, func(i int) error {
		return driveTickL1(l1, queues, avail, i)
	})
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	snap.Rows = append(snap.Rows, row)

	// L2 over a module cost tree fitted from the learned maps.
	l0cfg := controller.DefaultL0Config()
	l0cfg.Horizon = 2
	tree, err := controller.LearnModuleTree(l0cfg, controller.DefaultL1Config(), gmaps, controller.DefaultModuleSimConfig())
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	jts := make([]controller.JTilde, 4)
	for i := range jts {
		jts[i] = tree
	}
	l2, err := controller.NewL2(controller.DefaultL2Config(), jts)
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	qavg := make([]float64, 4)
	chat := []float64{0.0175, 0.0175, 0.0175, 0.0175}
	l2avail := []bool{true, true, true, true}
	row, err = measureTick("L2-decide", warmup, decisions, func(i int) error {
		return driveTickL2(l2, qavg, chat, l2avail, i)
	})
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	snap.Rows = append(snap.Rows, row)

	// The abstraction-map probe behind every L1 evaluation: one packed
	// hash lookup through caller-owned scratch.
	scratch := make([]float64, 4)
	probes := decisions * 64 // cheap enough to oversample
	row, err = measureTick("table-probe", warmup, probes, func(i int) error {
		return driveTickProbe(gmaps[0], scratch, i)
	})
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	snap.Rows = append(snap.Rows, row)

	// Fleet throughput: tenants stepping concurrently, one bin per
	// Observe. Byte/alloc columns are -1 by design (see TickBenchRow).
	fleetRow, err := runFleetTick(tenants, decisions)
	if err != nil {
		return TickBenchSnapshot{}, err
	}
	snap.Rows = append(snap.Rows, fleetRow)
	return snap, nil
}

// benchTenantConfig is the per-tenant configuration the fleet benchmarks
// share (the tick bench's fleet row and RunFleetBench's scale rows): the
// §4.3 standard module under a coarse learning grid, with artifacts
// cached in dir so the first tenant learns and the rest load.
func benchTenantConfig(seed int64, dir string) (fleet.TenantConfig, error) {
	module, err := cluster.StandardModule("M1", "M1")
	if err != nil {
		return fleet.TenantConfig{}, err
	}
	storeCfg := workload.DefaultStoreConfig()
	storeCfg.Objects = 500
	storeCfg.PopularCount = 50

	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Parallelism = 1 // shards provide the parallelism, not the tenants
	cfg.RecordFrequencies = false
	cfg.L0.Horizon = 2
	cfg.GMap = controller.GMapConfig{
		QMax: 100, QStep: 50,
		LambdaMax: 100, LambdaStep: 50,
		CMin: 0.016, CMax: 0.02, CStep: 0.004,
		SubSteps: 2,
	}
	cfg.ModuleSim = controller.ModuleSimConfig{
		QLevels:      []float64{0, 50},
		LambdaLevels: []float64{0, 30, 60, 120, 200},
		CLevels:      []float64{0.018},
		Tree:         approx.TreeConfig{MaxDepth: 6, MinLeaf: 1},
	}
	cfg.ArtifactDir = dir // identical hardware: learn once, load the rest
	return fleet.TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{module}},
		Core:       cfg,
		Store:      storeCfg,
		StoreSeed:  seed,
		BinSeconds: 30,
	}, nil
}

// runFleetTick steps `tenants` concurrent tenant hierarchies `bins` times
// each and reports tenant-ticks/sec, mirroring BenchmarkFleet64Tenants.
func runFleetTick(tenants, bins int) (TickBenchRow, error) {
	dir, err := os.MkdirTemp("", "hpm-tickbench-")
	if err != nil {
		return TickBenchRow{}, err
	}
	defer os.RemoveAll(dir)

	f := fleet.New(fleet.Config{})
	defer f.Close()
	ids := make([]string, tenants)
	for i := range ids {
		tc, err := benchTenantConfig(int64(i+1), dir)
		if err != nil {
			return TickBenchRow{}, err
		}
		ids[i] = fmt.Sprintf("tick-%03d", i)
		if err := f.CreateTenant(ids[i], tc); err != nil {
			return TickBenchRow{}, err
		}
	}
	start := time.Now()
	err = par.For(runtime.GOMAXPROCS(0), tenants, func(i int) error {
		for n := 0; n < bins; n++ {
			if _, err := f.Observe(ids[i], 400); err != nil {
				return err
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return TickBenchRow{}, err
	}
	ticks := tenants * bins
	return TickBenchRow{
		Level:             fmt.Sprintf("fleet-%d", tenants),
		Decisions:         ticks,
		NsPerDecision:     float64(elapsed.Nanoseconds()) / float64(ticks),
		BytesPerDecision:  -1,
		AllocsPerDecision: -1,
		TenantTicksPerSec: float64(ticks) / elapsed.Seconds(),
	}, nil
}
