package hierctl

import (
	"reflect"
	"strings"
	"testing"
)

func fastMatrixOptions() ScenarioMatrixOptions {
	opts := DefaultScenarioMatrixOptions()
	opts.MaxBins = 16
	return opts
}

// TestScenarioMatrixSmoke runs the full robustness matrix at the smallest
// bin budget: every registered parameter-free scenario under every matrix
// policy must produce a populated cell.
func TestScenarioMatrixSmoke(t *testing.T) {
	snap, err := RunScenarioMatrix(fastMatrixOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Scenarios) < 8 {
		t.Fatalf("matrix covers %d scenarios, want >= 8 (3 seed + 5 new)", len(snap.Scenarios))
	}
	if want := len(snap.Scenarios) * len(snap.Policies); len(snap.Cells) != want {
		t.Fatalf("%d cells for %d scenario x %d policies", len(snap.Cells), len(snap.Scenarios), len(snap.Policies))
	}
	for _, c := range snap.Cells {
		if c.Completed == 0 {
			t.Errorf("cell %s/%s completed nothing", c.Scenario, c.Policy)
		}
		if c.Energy <= 0 {
			t.Errorf("cell %s/%s has energy %v", c.Scenario, c.Policy, c.Energy)
		}
		if c.Bins < 16 {
			t.Errorf("cell %s/%s ran %d bins", c.Scenario, c.Policy, c.Bins)
		}
		switch c.Policy {
		case "hierarchical-llc", "centralized":
			if c.ExploredPerPeriod <= 0 {
				t.Errorf("cell %s/%s has no search overhead recorded", c.Scenario, c.Policy)
			}
		case "threshold":
			if c.ExploredPerPeriod != 0 {
				t.Errorf("threshold cell %s reports explored states", c.Scenario)
			}
		}
	}
}

// TestScenarioMatrixDeterminism pins the snapshot invariant CI relies on:
// the matrix is bit-identical across worker counts and across repeated
// runs with the same seed, and differs across seeds.
func TestScenarioMatrixDeterminism(t *testing.T) {
	opts := fastMatrixOptions()
	opts.Parallelism = 1
	a, err := RunScenarioMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 3
	b, err := RunScenarioMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("matrix differs between -parallelism 1 and 3")
	}
	opts.Seed = 2
	c, err := RunScenarioMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, c.Cells) {
		t.Fatal("matrix identical across seeds 1 and 2")
	}
}

func TestScenarioMatrixValidation(t *testing.T) {
	opts := DefaultScenarioMatrixOptions()
	opts.MaxBins = 8
	if _, err := RunScenarioMatrix(opts); err == nil {
		t.Error("bin budget 8 should be rejected")
	}
	opts = DefaultScenarioMatrixOptions()
	opts.Parallelism = -1
	if _, err := RunScenarioMatrix(opts); err == nil {
		t.Error("negative parallelism should be rejected")
	}
}

func TestRunScenarioByName(t *testing.T) {
	opts := ExperimentOptions{Scale: 0.05, Seed: 1, Fast: true, Parallelism: 1, Scenario: "flashcrowd"}
	rec, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed == 0 {
		t.Error("flashcrowd run completed nothing")
	}
	// Empty scenario falls back to the §4.3 synthetic day.
	opts.Scenario = ""
	opts.Scale = 0.01
	if _, err := RunScenario(opts); err != nil {
		t.Errorf("default scenario: %v", err)
	}
	opts.Scenario = "no-such-scenario"
	_, err = RunScenario(opts)
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown scenario error %v should list registered names", err)
	}
}

// TestRunScenarioFailstormInjects pins that the failstorm scenario's plan
// reaches the hierarchy's failure-injection path: the record must differ
// from the same run without the storm.
func TestRunScenarioFailstormInjects(t *testing.T) {
	storm, err := RunScenario(ExperimentOptions{Scale: 0.05, Seed: 1, Fast: true, Parallelism: 1, Scenario: "failstorm"})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunScenario(ExperimentOptions{Scale: 0.05, Seed: 1, Fast: true, Parallelism: 1, Scenario: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if storm.Energy == clean.Energy && storm.Completed == clean.Completed {
		t.Error("failstorm run indistinguishable from the clean synthetic run")
	}
}
