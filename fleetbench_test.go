package hierctl

import (
	"strings"
	"testing"

	"hierctl/internal/fleet"
)

func TestRunFleetBenchRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name   string
		bins   int
		scales []int
		frag   string
	}{
		{"zero bins", 0, []int{4}, "bin"},
		{"no scales", 2, nil, "scale"},
		{"zero scale", 2, []int{4, 0}, "scale 0"},
	}
	for _, tc := range cases {
		_, err := RunFleetBench(tc.bins, tc.scales)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.frag)
		}
	}
}

// TestRunFleetBenchSmall runs the full generation at toy scales and pins
// its invariants: one row per scale, constant aggregate load, and both
// equivalence checks passing — the same checks whose failure in a CI
// regeneration flags a batched-ingest or snapshot regression.
func TestRunFleetBenchSmall(t *testing.T) {
	snap, err := RunFleetBench(2, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(snap.Rows))
	}
	if snap.ComputersPerTenant != 2 {
		t.Errorf("computersPerTenant = %d, want 2", snap.ComputersPerTenant)
	}
	if snap.AggregateCountPerRound != fleetBenchAggregate {
		t.Errorf("aggregate = %v, want %v", snap.AggregateCountPerRound, float64(fleetBenchAggregate))
	}
	for i, n := range []int{4, 8} {
		row := snap.Rows[i]
		if row.Tenants != n || row.Bins != 2 {
			t.Errorf("row %d: tenants %d bins %d, want %d and 2", i, row.Tenants, row.Bins, n)
		}
		if got, want := row.CountPerBin, fleetBenchAggregate/float64(n); got != want {
			t.Errorf("row %d: countPerBin %v, want %v", i, got, want)
		}
		if row.TenantTicksPerSec <= 0 || row.NsPerTick <= 0 {
			t.Errorf("row %d: non-positive throughput %v / %v", i, row.TenantTicksPerSec, row.NsPerTick)
		}
		if row.SnapshotBytes <= 0 {
			t.Errorf("row %d: snapshot bytes %d", i, row.SnapshotBytes)
		}
	}
	// Larger fleets under the same load must snapshot larger.
	if snap.Rows[1].SnapshotBytes <= snap.Rows[0].SnapshotBytes {
		t.Errorf("snapshot bytes did not grow with the fleet: %d then %d",
			snap.Rows[0].SnapshotBytes, snap.Rows[1].SnapshotBytes)
	}
	if !snap.Checks.BatchEqualsSequential {
		t.Error("batched ingest diverged from sequential Observe calls")
	}
	if !snap.Checks.RestoreEqualsReplay {
		t.Error("restored fleet diverged from the original on the next bin")
	}
}

// benchmarkFleetIngest measures steady-state batched ingest: the fleet is
// built outside the timer, then each iteration pushes one bin to every
// tenant through a single ObserveBatch call.
func benchmarkFleetIngest(b *testing.B, n int) {
	dir := b.TempDir()
	f, ids, err := newBenchFleet(n, dir)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	count := fleetBenchAggregate / float64(n)
	entries := make([]fleet.BatchEntry, n)
	for i := range entries {
		entries[i] = fleet.BatchEntry{Tenant: ids[i], Counts: []float64{count}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := observeRound(f, entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ticks := float64(n) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "tenant-ticks/sec")
}

func BenchmarkFleetIngest64(b *testing.B)   { benchmarkFleetIngest(b, 64) }
func BenchmarkFleetIngest1024(b *testing.B) { benchmarkFleetIngest(b, 1024) }
