package hierctl

import (
	"reflect"
	"testing"

	"hierctl/internal/central"
	"hierctl/internal/workload"
)

// chaosFingerprint is the deterministic subset of a Record — everything
// except wall-clock timings — so runs can be compared bit-for-bit.
type chaosFingerprint struct {
	Completed, Dropped, Misroutes       int64
	Energy                              float64
	Switches                            int
	Mean, Violation, P50, P95, P99, Max float64
	Explored, Decisions                 [3]int
	Degraded                            int
	Stale, Rejects                      int64
	Trace, Oper, Resp, Predicted        []float64
}

func chaosFingerprintOf(r *Record) chaosFingerprint {
	return chaosFingerprint{
		Completed: r.Completed, Dropped: r.Dropped, Misroutes: r.Misroutes,
		Energy: r.Energy, Switches: r.Switches,
		Mean: r.MeanResponse(), Violation: r.ViolationFrac,
		P50: r.ResponseP50, P95: r.ResponseP95, P99: r.ResponseP99, Max: r.ResponseMax,
		Explored:  [3]int{r.L0Explored, r.L1Explored, r.L2Explored},
		Decisions: [3]int{r.L0Decisions, r.L1Decisions, r.L2Decisions},
		Degraded:  r.DegradedTicks, Stale: r.StaleObservations, Rejects: r.SanitizedRejects,
		Trace: r.Trace.Values, Oper: r.Operational.Values,
		Resp: r.ResponseMean.Values, Predicted: r.PredictedL1.Values,
	}
}

// runDegradedHier runs the hierarchical controller on a registered
// scenario's leading maxBins bins, with prep applied to the manager before
// the run (chaos injection, failpoints).
func runDegradedHier(t *testing.T, scenario string, seed int64, par, maxBins int, prep func(*Manager)) *Record {
	t.Helper()
	sc, err := workload.LookupScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sc.Trace(seed)
	if err != nil {
		t.Fatal(err)
	}
	sc.ScaleToCluster(trace, spec.Computers())
	if trace.Len() > maxBins {
		trace = trace.Slice(0, maxBins)
	}
	eopts := ExperimentOptions{Scale: 1, Seed: seed, Fast: true, Parallelism: par}
	mgr, err := NewManager(spec, eopts.Config())
	if err != nil {
		t.Fatal(err)
	}
	mgr.InjectPlan(sc.FailurePlan(trace))
	if prep != nil {
		prep(mgr)
	}
	store, err := NewStore(seed, sc.StoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mgr.Run(trace, store)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestChaosZeroFaultEquivalence is the no-op pin: injecting the "none"
// plan (or any empty plan) must leave runs bit-identical to runs with no
// chaos injected at all, across scenarios, seeds, and L1 parallelism —
// the always-on sanitizer path must not perturb a healthy run.
func TestChaosZeroFaultEquivalence(t *testing.T) {
	none, err := LookupChaosPlan("none")
	if err != nil {
		t.Fatal(err)
	}
	var firstBySeed [2]chaosFingerprint
	for _, scenario := range []string{"synthetic", "flashcrowd"} {
		for si, seed := range []int64{1, 2} {
			plain := chaosFingerprintOf(runDegradedHier(t, scenario, seed, 1, 24, nil))
			if plain.Degraded != 0 || plain.Stale != 0 || plain.Rejects != 0 {
				t.Errorf("%s seed %d: healthy run reports degraded counters: %+v", scenario, seed,
					[]int64{int64(plain.Degraded), plain.Stale, plain.Rejects})
			}
			for _, par := range []int{1, 4} {
				got := chaosFingerprintOf(runDegradedHier(t, scenario, seed, par, 24, func(m *Manager) {
					m.InjectChaos(none.Build(seed, 1e9))
				}))
				if !reflect.DeepEqual(plain, got) {
					t.Errorf("%s seed %d parallelism %d: zero-fault chaos run diverged from plain run", scenario, seed, par)
				}
			}
			if scenario == "synthetic" {
				firstBySeed[si] = plain
			}
		}
	}
	// Sanity check on the comparison itself: different seeds must differ.
	if reflect.DeepEqual(firstBySeed[0], firstBySeed[1]) {
		t.Error("fingerprints identical across seeds — the comparison is vacuous")
	}
}

// TestChaosZeroFaultEquivalenceBaselines extends the no-op pin to the two
// flat controllers, which share the engine sanitizer path.
func TestChaosZeroFaultEquivalenceBaselines(t *testing.T) {
	none, err := LookupChaosPlan("none")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.LookupScenario("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sc.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	sc.ScaleToCluster(trace, spec.Computers())
	trace = trace.Slice(0, 24)
	failures := sc.FailurePlan(trace)

	runThreshold := func(inject bool) *BaselineResult {
		pol, err := ThresholdPolicy(0.35, 0.8, 1)
		if err != nil {
			t.Fatal(err)
		}
		store, err := NewStore(1, sc.StoreConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultBaselineConfig()
		cfg.Seed = 1
		cfg.Failures = failures
		if inject {
			cfg.Chaos = none.Build(1, 1e9)
		}
		res, err := RunBaseline(spec, pol, trace, store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := runThreshold(false), runThreshold(true); !reflect.DeepEqual(a, b) {
		t.Error("threshold: zero-fault chaos run diverged from plain run")
	}

	runCentral := func(inject bool) *central.Result {
		store, err := NewStore(1, sc.StoreConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := central.DefaultRunnerConfig()
		cfg.Seed = 1
		cfg.Failures = failures
		cfg.Controller.NeighbourDepth = 1
		if inject {
			cfg.Chaos = none.Build(1, 1e9)
		}
		res, err := central.Run(spec, trace, store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res.DecideTimePerStep = 0 // wall clock — not part of the pin
		return res
	}
	if a, b := runCentral(false), runCentral(true); !reflect.DeepEqual(a, b) {
		t.Error("centralized: zero-fault chaos run diverged from plain run")
	}
}

// TestDeadlineFallbackDeterministic pins the decision-deadline path: a
// squeezed budget trips the safe fallback on some ticks, the run still
// completes, and two identical runs — including which ticks degraded —
// are bit-identical.
func TestDeadlineFallbackDeterministic(t *testing.T) {
	squeeze := func(m *Manager) { m.InjectChaos(ChaosPlan{Name: "squeeze", DecisionBudget: 24}) }
	a := runDegradedHier(t, "flashcrowd", 1, 1, 24, squeeze)
	if a.DegradedTicks == 0 {
		t.Fatal("budget 24 tripped no deadline fallback")
	}
	if a.Completed == 0 {
		t.Fatal("degraded run completed no requests")
	}
	b := runDegradedHier(t, "flashcrowd", 1, 2, 24, squeeze)
	if !reflect.DeepEqual(chaosFingerprintOf(a), chaosFingerprintOf(b)) {
		t.Error("deadline-fallback runs diverged across repetitions/parallelism")
	}
}

// TestPanicFallbackDeterministic pins the panic leg of the fallback: a
// controller panic mid-run is recovered into the same deterministic safe
// settings, the run completes, and the outcome is reproducible.
func TestPanicFallbackDeterministic(t *testing.T) {
	// Trigger on module 0's third planning call rather than a fixed tick,
	// so the test doesn't depend on the L1 cadence. Only module 0's calls
	// touch the counter, and ticks are sequenced by the run loop, so this
	// is race-free even with parallel L1 fan-out.
	boom := func(m *Manager) {
		calls := 0
		m.SetL1Failpoint(func(module, tick int) {
			if module == 0 {
				if calls++; calls == 3 {
					panic("injected controller fault")
				}
			}
		})
	}
	a := runDegradedHier(t, "synthetic", 1, 1, 24, boom)
	if a.DegradedTicks == 0 {
		t.Fatal("recovered panic produced no degraded tick")
	}
	if a.Completed == 0 {
		t.Fatal("run with recovered panic completed no requests")
	}
	b := runDegradedHier(t, "synthetic", 1, 1, 24, boom)
	if !reflect.DeepEqual(chaosFingerprintOf(a), chaosFingerprintOf(b)) {
		t.Error("panic-fallback runs diverged across repetitions")
	}
	healthy := chaosFingerprintOf(runDegradedHier(t, "synthetic", 1, 1, 24, nil))
	if reflect.DeepEqual(healthy, chaosFingerprintOf(a)) {
		t.Error("panic fallback indistinguishable from healthy run — failpoint never fired?")
	}
}

func fastChaosMatrixOptions() ChaosMatrixOptions {
	opts := DefaultChaosMatrixOptions()
	opts.MaxBins = 16
	return opts
}

// TestChaosMatrixSmoke runs the full degraded-mode matrix at the smallest
// bin budget and checks each plan leaves its expected signature.
func TestChaosMatrixSmoke(t *testing.T) {
	snap, err := RunChaosMatrix(fastChaosMatrixOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Plans) != len(ChaosPlanNames()) {
		t.Fatalf("matrix covers %d plans, registry has %d", len(snap.Plans), len(ChaosPlanNames()))
	}
	if len(snap.Cells) != len(snap.Plans)*len(snap.Policies) {
		t.Fatalf("%d cells for %d plans x %d policies", len(snap.Cells), len(snap.Plans), len(snap.Policies))
	}
	cell := func(plan, policy string) ChaosCell {
		for _, c := range snap.Cells {
			if c.Plan == plan && c.Policy == policy {
				return c
			}
		}
		t.Fatalf("cell (%s, %s) missing", plan, policy)
		return ChaosCell{}
	}
	for _, c := range snap.Cells {
		if c.Bins == 0 || c.Completed == 0 {
			t.Errorf("cell (%s, %s) is empty: %+v", c.Plan, c.Policy, c)
		}
		if c.Plan == "none" && (c.DegradedTicks != 0 || c.StaleObservations != 0 || c.SanitizedRejects != 0) {
			t.Errorf("healthy cell (%s, %s) reports degraded counters: %+v", c.Plan, c.Policy, c)
		}
		if c.Policy != "hierarchical-llc" && c.DegradedTicks != 0 {
			t.Errorf("deadline-free policy %s reports degraded ticks under %s", c.Policy, c.Plan)
		}
	}
	for _, policy := range snap.Policies {
		if c := cell("drop-bins", policy); c.StaleObservations == 0 {
			t.Errorf("drop-bins under %s held no stale observations", policy)
		}
		if c := cell("corrupt-counts", policy); c.SanitizedRejects == 0 {
			t.Errorf("corrupt-counts under %s rejected nothing", policy)
		}
	}
	if c := cell("deadline", "hierarchical-llc"); c.DegradedTicks == 0 {
		t.Error("deadline plan tripped no fallback on the hierarchical controller")
	}
}

// TestChaosMatrixDeterminism pins the committed BENCH_chaos.json contract:
// the snapshot is identical at any parallelism, and seed-sensitive.
func TestChaosMatrixDeterminism(t *testing.T) {
	opts := fastChaosMatrixOptions()
	opts.Parallelism = 1
	a, err := RunChaosMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 3
	b, err := RunChaosMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("chaos matrix differs across parallelism")
	}
	opts.Seed = 2
	c, err := RunChaosMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, c.Cells) {
		t.Error("chaos matrix identical across seeds")
	}
}

func TestChaosMatrixValidation(t *testing.T) {
	opts := fastChaosMatrixOptions()
	opts.MaxBins = 4
	if _, err := RunChaosMatrix(opts); err == nil {
		t.Error("bin budget below the floor accepted")
	}
	opts = fastChaosMatrixOptions()
	opts.Scenario = "no-such-scenario"
	if _, err := RunChaosMatrix(opts); err == nil {
		t.Error("unknown scenario accepted")
	}
	opts = fastChaosMatrixOptions()
	opts.Parallelism = -1
	if _, err := RunChaosMatrix(opts); err == nil {
		t.Error("negative parallelism accepted")
	}
}
