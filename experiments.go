package hierctl

import (
	"fmt"
	"strings"
	"time"

	"hierctl/internal/central"
	"hierctl/internal/chaos"
	"hierctl/internal/econ"
	"hierctl/internal/metrics"
	"hierctl/internal/par"
	"hierctl/internal/workload"
)

// ExperimentOptions tunes the preset experiment runners. The zero value is
// not valid; start from DefaultExperimentOptions.
type ExperimentOptions struct {
	// Scale shrinks the trace length (0 < Scale ≤ 1) so benchmarks and
	// smoke tests can run the full pipeline quickly; 1 reproduces the
	// paper-size run.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Fast coarsens the offline learning grids and shortens the L0
	// horizon to 2; use for benchmarks where learning time would
	// dominate. The paper-fidelity setting is false.
	Fast bool
	// Parallelism bounds the worker pools used throughout the stack: the
	// per-module L1 fan-out and offline learning inside each Manager,
	// the centralized baseline's sharded candidate search, and the
	// embarrassingly independent experiment sweeps (scalability sizes,
	// ablation variants, policy comparisons, overhead cases). The bound
	// is per pool, and pools nest (a sweep worker's Manager runs its own
	// L1 fan-out), so total concurrency can exceed this value. 0 (the
	// default) uses one worker per available CPU; 1 reproduces the
	// sequential runners exactly. Results are identical at any setting.
	Parallelism int
	// SearchParallelism additionally fans each L0 lookahead search's
	// level-0 candidates across this many workers (0 or 1 = sequential
	// search, the default). Decisions are bit-identical at any setting,
	// but a parallel search's explored-state accounting depends on
	// branch-and-bound pruning timing and may vary run to run, so leave
	// this off when comparing overhead metrics; it mainly benefits
	// standalone or few-module deployments whose outer pools leave CPUs
	// idle.
	SearchParallelism int
	// Scenario selects a registered workload scenario by name for the
	// scenario-driven runners (RunScenario); empty means "synthetic".
	// See workload.Scenarios / ScenarioNames for the registry.
	Scenario string
}

// DefaultExperimentOptions runs experiments at full paper scale.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{Scale: 1, Seed: 1}
}

func (o ExperimentOptions) validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("hierctl: scale %v outside (0, 1]", o.Scale)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("hierctl: parallelism %d < 0", o.Parallelism)
	}
	if o.SearchParallelism < 0 {
		return fmt.Errorf("hierctl: search parallelism %d < 0", o.SearchParallelism)
	}
	return nil
}

// Config assembles the hierarchy configuration implied by the options.
func (o ExperimentOptions) Config() Config {
	cfg := DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Parallelism = o.Parallelism
	cfg.L0.SearchParallelism = o.SearchParallelism
	if o.Fast {
		cfg.L0.Horizon = 2
		cfg.GMap.QStep = 40
		cfg.GMap.LambdaStep = 30
		cfg.GMap.SubSteps = 2
		cfg.ModuleSim.QLevels = []float64{0, 40, 160}
		cfg.ModuleSim.LambdaLevels = []float64{0, 25, 50, 100, 200, 400}
		cfg.ModuleSim.CLevels = []float64{0.0175}
	}
	return cfg
}

// Fig3Table renders the per-computer operating-frequency table of Fig. 3.
func Fig3Table() (string, error) {
	tab := metrics.NewTable("computer", "points", "frequencies (MHz)", "speed", "base power")
	for kind := 0; kind < 4; kind++ {
		cs, err := StandardComputer(kind, fmt.Sprintf("C%d", kind+1))
		if err != nil {
			return "", err
		}
		freqs := make([]string, len(cs.FrequenciesHz))
		for i, f := range cs.FrequenciesHz {
			freqs[i] = fmt.Sprintf("%.0f", f/1e6)
		}
		tab.AddRow(cs.Name, len(cs.FrequenciesHz), strings.Join(freqs, " "), cs.SpeedFactor, cs.Power.Base)
	}
	return tab.String(), nil
}

// scaleTrace trims a trace to the leading fraction given by Scale.
func (o ExperimentOptions) scaleTrace(tr *Series) *Series {
	n := int(float64(tr.Len()) * o.Scale)
	if n < 16 {
		n = min(16, tr.Len())
	}
	return tr.Slice(0, n)
}

// RunFig4Fig5 reproduces the §4.3 module experiment behind Figs. 4 and 5:
// the four-computer module under the synthetic diurnal trace, r* = 4 s.
// The returned record carries the Fig. 4 series (workload, Kalman
// predictions, operational computers) and the Fig. 5 series (per-computer
// frequencies, achieved response times).
func RunFig4Fig5(opts ExperimentOptions) (*Record, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		return nil, err
	}
	mgr, err := NewManager(spec, opts.Config())
	if err != nil {
		return nil, err
	}
	synth := DefaultSyntheticConfig()
	synth.Seed = opts.Seed
	trace, err := SyntheticTrace(synth)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(opts.Seed, DefaultStoreConfig())
	if err != nil {
		return nil, err
	}
	return mgr.Run(opts.scaleTrace(trace), store)
}

// RunFig6Fig7 reproduces the §5.2 cluster experiment behind Figs. 6 and 7:
// sixteen heterogeneous computers in four modules under the WC'98-like day
// trace. The record carries the Fig. 6 series (workload, operational
// computers) and the Fig. 7 series (per-module fractions γ_i).
func RunFig6Fig7(opts ExperimentOptions) (*Record, error) {
	return runCluster(4, opts)
}

// runCluster runs the §5.2 experiment on a cluster of p modules.
func runCluster(p int, opts ExperimentOptions) (*Record, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spec, err := StandardCluster(p)
	if err != nil {
		return nil, err
	}
	mgr, err := NewManager(spec, opts.Config())
	if err != nil {
		return nil, err
	}
	wc := DefaultWC98Config()
	wc.Seed = opts.Seed
	// Scale the offered load with the cluster size so the p = 5 run is
	// comparably loaded per computer.
	wc.Peak *= float64(p) / 4
	trace, err := WC98Trace(wc)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(opts.Seed, DefaultStoreConfig())
	if err != nil {
		return nil, err
	}
	return mgr.Run(opts.scaleTrace(trace), store)
}

// OverheadRow is one line of the §4.3/§5.2 controller-overhead tables.
type OverheadRow struct {
	// Label identifies the configuration (e.g. "m=4 q=0.05").
	Label string
	// Computers is the cluster size.
	Computers int
	// ExploredPerL1 is the average states examined per L1 period (the
	// paper reports ≈858 for m = 4).
	ExploredPerL1 float64
	// DecisionTime is the mean online hierarchy computation per L1
	// period (the paper's MATLAB setup measured ≈2.0 s for m = 4).
	DecisionTime time.Duration
	// LearnTime is the offline learning cost.
	LearnTime time.Duration
	// MeanResponse and Energy summarize control quality, so overhead
	// rows double as sanity checks.
	MeanResponse float64
	Energy       float64
}

// RunOverheadModule reproduces the §4.3 overhead study: the module-level
// hierarchy at size m with load-fraction quantum q, under the synthetic
// trace scaled to the module size.
func RunOverheadModule(m int, quantum float64, opts ExperimentOptions) (OverheadRow, error) {
	if err := opts.validate(); err != nil {
		return OverheadRow{}, err
	}
	spec, err := ScaledModuleCluster(m)
	if err != nil {
		return OverheadRow{}, err
	}
	cfg := opts.Config()
	cfg.L1.Quantum = quantum
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		return OverheadRow{}, err
	}
	synth := DefaultSyntheticConfig()
	synth.Seed = opts.Seed
	// §4.3: "after appropriately scaling the original workload".
	synth.BaseMin *= float64(m) / 4
	synth.BaseMax *= float64(m) / 4
	trace, err := SyntheticTrace(synth)
	if err != nil {
		return OverheadRow{}, err
	}
	store, err := NewStore(opts.Seed, DefaultStoreConfig())
	if err != nil {
		return OverheadRow{}, err
	}
	rec, err := mgr.Run(opts.scaleTrace(trace), store)
	if err != nil {
		return OverheadRow{}, err
	}
	return OverheadRow{
		Label:         fmt.Sprintf("m=%d q=%.2f", m, quantum),
		Computers:     m,
		ExploredPerL1: rec.ExploredPerL1Decision(),
		DecisionTime:  rec.DecisionTimePerPeriod(),
		LearnTime:     rec.LearnTime,
		MeanResponse:  rec.MeanResponse(),
		Energy:        rec.Energy,
	}, nil
}

// OverheadCase names one configuration of the §4.3 overhead sweep.
type OverheadCase struct {
	// M is the module size, Quantum the load-fraction quantum q.
	M       int
	Quantum float64
}

// DefaultOverheadCases returns the paper's §4.3 sweep: m = 4 at q = 0.05,
// m = 6 and m = 10 at q = 0.1.
func DefaultOverheadCases() []OverheadCase {
	return []OverheadCase{{4, 0.05}, {6, 0.1}, {10, 0.1}}
}

// RunOverheadModules runs the §4.3 overhead sweep (OVH1): each case is an
// independent closed-loop run, fanned across opts.Parallelism workers.
// Row order and contents match running RunOverheadModule case by case.
func RunOverheadModules(cases []OverheadCase, opts ExperimentOptions) ([]OverheadRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return par.Map(par.Workers(opts.Parallelism), len(cases), func(i int) (OverheadRow, error) {
		return RunOverheadModule(cases[i].M, cases[i].Quantum, opts)
	})
}

// RunOverheadCluster reproduces the §5.2 overhead study: the full
// hierarchy on p modules (16 computers at p = 4, 20 at p = 5).
func RunOverheadCluster(p int, opts ExperimentOptions) (OverheadRow, error) {
	rec, err := runCluster(p, opts)
	if err != nil {
		return OverheadRow{}, err
	}
	return OverheadRow{
		Label:         fmt.Sprintf("p=%d (%d computers)", p, 4*p),
		Computers:     4 * p,
		ExploredPerL1: rec.ExploredPerL1Decision(),
		DecisionTime:  rec.DecisionTimePerPeriod(),
		LearnTime:     rec.LearnTime,
		MeanResponse:  rec.MeanResponse(),
		Energy:        rec.Energy,
	}, nil
}

// RunOverheadClusters runs the §5.2 overhead sweep (OVH2) over the given
// module counts, fanning the independent runs across opts.Parallelism
// workers.
func RunOverheadClusters(ps []int, opts ExperimentOptions) ([]OverheadRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return par.Map(par.Workers(opts.Parallelism), len(ps), func(i int) (OverheadRow, error) {
		return RunOverheadCluster(ps[i], opts)
	})
}

// EnergyRow is one line of the EXT1 policy-comparison table.
type EnergyRow struct {
	Policy        string
	Energy        float64
	MeanResponse  float64
	ResponseP95   float64
	ViolationFrac float64
	Switches      int
	Completed     int64
	Dropped       int64
	// ProfitUSD is the §4.3 "scalarized" cost: the run priced with the
	// default tariff (revenue per met-target request minus SLA, energy,
	// and switching costs).
	ProfitUSD float64
}

// priceRow applies the default tariff to a row in place.
func priceRow(r *EnergyRow) error {
	s, err := econ.DefaultTariff().Price(econ.Outcome{
		Completed:     r.Completed,
		Dropped:       r.Dropped,
		ViolationFrac: r.ViolationFrac,
		Energy:        r.Energy,
		Switches:      r.Switches,
	})
	if err != nil {
		return err
	}
	r.ProfitUSD = s.Profit
	return nil
}

// RunEnergyComparison runs the EXT1 experiment: the hierarchical LLC
// controller against the threshold heuristics and the static all-on
// configuration on the same §4.3 module and synthetic diurnal day.
func RunEnergyComparison(opts ExperimentOptions) ([]EnergyRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		return nil, err
	}
	synth := DefaultSyntheticConfig()
	synth.Seed = opts.Seed
	fullTrace, err := SyntheticTrace(synth)
	if err != nil {
		return nil, err
	}
	trace := opts.scaleTrace(fullTrace)
	newStore := func() (*Store, error) { return NewStore(opts.Seed, DefaultStoreConfig()) }

	// The four policies run against private plants and stores, so the
	// comparison fans out across the worker pool; row order is fixed by
	// index (LLC first, then the baselines).
	th, err := ThresholdPolicy(0.35, 0.8, 1)
	if err != nil {
		return nil, err
	}
	dv, err := ThresholdDVFSPolicy(0.35, 0.8, 1, 0.8)
	if err != nil {
		return nil, err
	}
	baselines := []BaselinePolicy{AlwaysOnPolicy(), th, dv}
	rows := make([]EnergyRow, 1+len(baselines))
	err = par.For(par.Workers(opts.Parallelism), len(rows), func(i int) error {
		store, err := newStore()
		if err != nil {
			return err
		}
		if i == 0 {
			// Hierarchical LLC.
			mgr, err := NewManager(spec, opts.Config())
			if err != nil {
				return err
			}
			rec, err := mgr.Run(trace, store)
			if err != nil {
				return err
			}
			rows[i] = EnergyRow{
				Policy:        "hierarchical-llc",
				Energy:        rec.Energy,
				MeanResponse:  rec.MeanResponse(),
				ResponseP95:   rec.ResponseP95,
				ViolationFrac: rec.ViolationFrac,
				Switches:      rec.Switches,
				Completed:     rec.Completed,
				Dropped:       rec.Dropped,
			}
			return priceRow(&rows[i])
		}
		bcfg := DefaultBaselineConfig()
		bcfg.Seed = opts.Seed
		res, err := RunBaseline(spec, baselines[i-1], trace, store, bcfg)
		if err != nil {
			return err
		}
		rows[i] = EnergyRow{
			Policy:        res.Policy,
			Energy:        res.Energy,
			MeanResponse:  res.MeanResponse,
			ResponseP95:   res.ResponseP95,
			ViolationFrac: res.ViolationFrac,
			Switches:      res.Switches,
			Completed:     res.Completed,
			Dropped:       res.Dropped,
		}
		return priceRow(&rows[i])
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunScenario runs the hierarchical LLC controller on the §4.3 module
// under the scenario named by opts.Scenario (empty = "synthetic"): the
// arrival trace is built from opts.Seed, amplitude-scaled to the module
// per the scenario's reference cluster size, trimmed by opts.Scale, and
// the scenario's service-time mix and failure plan are applied.
func RunScenario(opts ExperimentOptions) (*Record, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	name := opts.Scenario
	if name == "" {
		name = "synthetic"
	}
	sc, err := workload.LookupScenario(name)
	if err != nil {
		return nil, err
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		return nil, err
	}
	trace, err := sc.Trace(opts.Seed)
	if err != nil {
		return nil, err
	}
	sc.ScaleToCluster(trace, spec.Computers())
	trace = opts.scaleTrace(trace)
	mgr, err := NewManager(spec, opts.Config())
	if err != nil {
		return nil, err
	}
	mgr.InjectPlan(sc.FailurePlan(trace))
	store, err := NewStore(opts.Seed, sc.StoreConfig())
	if err != nil {
		return nil, err
	}
	return mgr.Run(trace, store)
}

// ScenarioCell is one cell of the robustness matrix: one policy's outcome
// under one registered scenario. All fields are deterministic per seed —
// wall-clock quantities are deliberately absent so the serialized matrix
// (BENCH_scenarios.json) is bit-identical across regenerations and worker
// counts.
type ScenarioCell struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// Bins is the trace length the cell ran (after the MaxBins budget).
	Bins      int   `json:"bins"`
	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"`
	// Energy and Switches are the power-management outcomes; MeanResponse
	// and ViolationFrac the QoS outcomes (violations are the fraction of
	// control periods above r*).
	Energy        float64 `json:"energy"`
	Switches      int     `json:"switches"`
	MeanResponse  float64 `json:"meanResponse"`
	ViolationFrac float64 `json:"violationFrac"`
	// ExploredPerPeriod is the §4.3 controller-overhead metric: states
	// examined per decision period (0 for the search-free threshold
	// policy).
	ExploredPerPeriod float64 `json:"exploredPerPeriod"`
}

// ScenarioMatrixOptions tunes RunScenarioMatrix. The zero value is not
// valid; start from DefaultScenarioMatrixOptions.
type ScenarioMatrixOptions struct {
	// Seed drives every cell's randomness; the whole matrix is
	// deterministic per seed.
	Seed int64
	// MaxBins budgets each cell's trace length so the full matrix stays
	// affordable: traces longer than MaxBins bins are trimmed to their
	// leading MaxBins (scenarios place their structure — spikes, storms —
	// inside the default budget).
	MaxBins int
	// Fast selects the coarse learning grids (the benchmark setting).
	Fast bool
	// Parallelism fans the independent cells across this many workers
	// (0 = one per CPU). Cell contents are bit-identical at any setting.
	Parallelism int
}

// DefaultScenarioMatrixOptions returns the canonical matrix configuration
// — the one the committed BENCH_scenarios.json snapshot is generated with.
func DefaultScenarioMatrixOptions() ScenarioMatrixOptions {
	return ScenarioMatrixOptions{Seed: 1, MaxBins: 160, Fast: true}
}

// ScenarioMatrixPolicies are the controllers each scenario is run under:
// the paper's hierarchy, the Pinheiro-style threshold baseline, and the
// flat centralized controller of EXT3.
func ScenarioMatrixPolicies() []string {
	return []string{"hierarchical-llc", "threshold", "centralized"}
}

// ScenarioMatrixSnapshot is the BENCH_scenarios.json payload: the matrix
// configuration and one cell per (scenario, policy) pair, scenarios in
// registry order. Serialization is bit-identical across regenerations with
// the same options at any Parallelism.
type ScenarioMatrixSnapshot struct {
	Seed      int64          `json:"seed"`
	MaxBins   int            `json:"maxBins"`
	Fast      bool           `json:"fast"`
	Policies  []string       `json:"policies"`
	Scenarios []string       `json:"scenarios"`
	Cells     []ScenarioCell `json:"cells"`
}

// RunScenarioMatrix runs the robustness matrix: every registered,
// parameter-free scenario (see workload.Scenarios) under every matrix
// policy on the §4.3 module, reporting QoS violations, energy, and search
// overhead per cell. Cells are independent closed-loop runs fanned across
// opts.Parallelism workers; order and contents match the sequential sweep
// exactly.
func RunScenarioMatrix(opts ScenarioMatrixOptions) (*ScenarioMatrixSnapshot, error) {
	if opts.MaxBins < 16 {
		return nil, fmt.Errorf("hierctl: matrix bin budget %d < 16", opts.MaxBins)
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("hierctl: parallelism %d < 0", opts.Parallelism)
	}
	var scens []workload.Scenario
	for _, sc := range workload.Scenarios() {
		if !sc.NeedsArg {
			scens = append(scens, sc)
		}
	}
	policies := ScenarioMatrixPolicies()
	snap := &ScenarioMatrixSnapshot{
		Seed:     opts.Seed,
		MaxBins:  opts.MaxBins,
		Fast:     opts.Fast,
		Policies: policies,
	}
	for _, sc := range scens {
		snap.Scenarios = append(snap.Scenarios, sc.Name)
	}
	cells, err := par.Map(par.Workers(opts.Parallelism), len(scens)*len(policies), func(i int) (ScenarioCell, error) {
		sc, policy := scens[i/len(policies)], policies[i%len(policies)]
		cell, err := runScenarioCell(sc, policy, opts)
		if err != nil {
			return ScenarioCell{}, fmt.Errorf("hierctl: scenario %s under %s: %w", sc.Name, policy, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	snap.Cells = cells
	return snap, nil
}

// runScenarioCell runs one (scenario, policy) cell on the §4.3 module.
// Every policy sees the identical trace, store configuration, and failure
// plan, so rows compare control strategies, not inputs.
func runScenarioCell(sc workload.Scenario, policy string, opts ScenarioMatrixOptions) (ScenarioCell, error) {
	spec, err := StandardModuleCluster()
	if err != nil {
		return ScenarioCell{}, err
	}
	trace, err := sc.Trace(opts.Seed)
	if err != nil {
		return ScenarioCell{}, err
	}
	sc.ScaleToCluster(trace, spec.Computers())
	if trace.Len() > opts.MaxBins {
		trace = trace.Slice(0, opts.MaxBins)
	}
	plan := sc.FailurePlan(trace)
	store, err := NewStore(opts.Seed, sc.StoreConfig())
	if err != nil {
		return ScenarioCell{}, err
	}
	cell := ScenarioCell{Scenario: sc.Name, Policy: policy, Bins: trace.Len()}
	switch policy {
	case "hierarchical-llc":
		// Cells already fan out; per-manager parallelism on top would
		// oversubscribe the scheduler (results are identical either way).
		eopts := ExperimentOptions{Scale: 1, Seed: opts.Seed, Fast: opts.Fast, Parallelism: 1}
		mgr, err := NewManager(spec, eopts.Config())
		if err != nil {
			return ScenarioCell{}, err
		}
		mgr.InjectPlan(plan)
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return ScenarioCell{}, err
		}
		cell.Completed, cell.Dropped = rec.Completed, rec.Dropped
		cell.Energy, cell.Switches = rec.Energy, rec.Switches
		cell.MeanResponse, cell.ViolationFrac = rec.MeanResponse(), rec.ViolationFrac
		cell.ExploredPerPeriod = rec.ExploredPerL1Decision()
	case "threshold":
		pol, err := ThresholdPolicy(0.35, 0.8, 1)
		if err != nil {
			return ScenarioCell{}, err
		}
		bcfg := DefaultBaselineConfig()
		bcfg.Seed = opts.Seed
		bcfg.Failures = plan
		res, err := RunBaseline(spec, pol, trace, store, bcfg)
		if err != nil {
			return ScenarioCell{}, err
		}
		cell.Completed, cell.Dropped = res.Completed, res.Dropped
		cell.Energy, cell.Switches = res.Energy, res.Switches
		cell.MeanResponse, cell.ViolationFrac = res.MeanResponse, res.ViolationFrac
	case "centralized":
		ccfg := central.DefaultRunnerConfig()
		ccfg.Seed = opts.Seed
		ccfg.Failures = plan
		if opts.Fast {
			ccfg.Controller.NeighbourDepth = 1
		}
		res, err := central.Run(spec, trace, store, ccfg)
		if err != nil {
			return ScenarioCell{}, err
		}
		cell.Completed, cell.Dropped = res.Completed, res.Dropped
		cell.Energy, cell.Switches = res.Energy, res.Switches
		cell.MeanResponse, cell.ViolationFrac = res.MeanResponse, res.ViolationFrac
		cell.ExploredPerPeriod = res.ExploredPerStep
	default:
		return ScenarioCell{}, fmt.Errorf("unknown matrix policy %q", policy)
	}
	return cell, nil
}

// ChaosCell is one cell of the degraded-mode matrix: one policy's outcome
// under one registered sensor-fault plan on a fixed scenario. Like the
// scenario matrix, wall-clock quantities are deliberately absent so the
// serialized matrix (BENCH_chaos.json) is bit-identical across
// regenerations and worker counts.
type ChaosCell struct {
	Plan   string `json:"plan"`
	Policy string `json:"policy"`
	// Bins is the trace length the cell ran (after the MaxBins budget).
	Bins      int   `json:"bins"`
	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"`
	// Energy and Switches are the power-management outcomes; MeanResponse
	// and ViolationFrac the QoS outcomes under the injected faults.
	Energy        float64 `json:"energy"`
	Switches      int     `json:"switches"`
	MeanResponse  float64 `json:"meanResponse"`
	ViolationFrac float64 `json:"violationFrac"`
	// DegradedTicks counts control periods decided through the
	// deterministic fallback — always 0 for the search-free threshold
	// policy and the deadline-free centralized controller.
	DegradedTicks int `json:"degradedTicks"`
	// StaleObservations and SanitizedRejects are the engine sanitizer's
	// counters: module observations held at the last good value, and
	// observations rejected as invalid (NaN/negative/dropped).
	StaleObservations int64 `json:"staleObservations"`
	SanitizedRejects  int64 `json:"sanitizedRejects"`
}

// ChaosMatrixOptions tunes RunChaosMatrix. The zero value is not valid;
// start from DefaultChaosMatrixOptions.
type ChaosMatrixOptions struct {
	// Seed drives every cell's randomness (workload, dispatch, and the
	// fault plans themselves); the whole matrix is deterministic per seed.
	Seed int64
	// MaxBins budgets each cell's trace length (trimmed to the leading
	// MaxBins bins), like the scenario matrix's budget.
	MaxBins int
	// Fast selects the coarse learning grids (the benchmark setting).
	Fast bool
	// Parallelism fans the independent cells across this many workers
	// (0 = one per CPU). Cell contents are bit-identical at any setting.
	Parallelism int
	// Scenario names the registered workload every cell runs — the matrix
	// varies the fault plan, not the load shape.
	Scenario string
}

// DefaultChaosMatrixOptions returns the canonical matrix configuration —
// the one the committed BENCH_chaos.json snapshot is generated with. The
// flashcrowd scenario gives the faults a demanding backdrop: a load spike
// mid-trace punishes a controller that mishandles corrupted observations.
func DefaultChaosMatrixOptions() ChaosMatrixOptions {
	return ChaosMatrixOptions{Seed: 1, MaxBins: 160, Fast: true, Scenario: "flashcrowd"}
}

// ChaosMatrixPolicies are the controllers each fault plan is run under —
// the same three strategies as the scenario matrix.
func ChaosMatrixPolicies() []string {
	return []string{"hierarchical-llc", "threshold", "centralized"}
}

// ChaosMatrixSnapshot is the BENCH_chaos.json payload: the matrix
// configuration and one cell per (plan, policy) pair, plans in registry
// order. Serialization is bit-identical across regenerations with the
// same options at any Parallelism.
type ChaosMatrixSnapshot struct {
	Seed     int64       `json:"seed"`
	MaxBins  int         `json:"maxBins"`
	Fast     bool        `json:"fast"`
	Scenario string      `json:"scenario"`
	Policies []string    `json:"policies"`
	Plans    []string    `json:"plans"`
	Cells    []ChaosCell `json:"cells"`
}

// RunChaosMatrix runs the degraded-mode matrix: every registered chaos
// plan (see ChaosPlans) under every matrix policy on the §4.3 module over
// one fixed scenario, reporting QoS and the degraded-input/fallback
// counters per cell. Cells are independent closed-loop runs fanned across
// opts.Parallelism workers; order and contents match the sequential sweep
// exactly — the "none" plan row doubles as the pinned healthy baseline.
func RunChaosMatrix(opts ChaosMatrixOptions) (*ChaosMatrixSnapshot, error) {
	if opts.MaxBins < 16 {
		return nil, fmt.Errorf("hierctl: matrix bin budget %d < 16", opts.MaxBins)
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("hierctl: parallelism %d < 0", opts.Parallelism)
	}
	sc, err := workload.LookupScenario(opts.Scenario)
	if err != nil {
		return nil, err
	}
	if sc.NeedsArg {
		return nil, fmt.Errorf("hierctl: chaos matrix scenario %q needs an argument; pick a parameter-free scenario", opts.Scenario)
	}
	plans := chaos.Specs()
	policies := ChaosMatrixPolicies()
	snap := &ChaosMatrixSnapshot{
		Seed:     opts.Seed,
		MaxBins:  opts.MaxBins,
		Fast:     opts.Fast,
		Scenario: opts.Scenario,
		Policies: policies,
	}
	for _, p := range plans {
		snap.Plans = append(snap.Plans, p.Name)
	}
	cells, err := par.Map(par.Workers(opts.Parallelism), len(plans)*len(policies), func(i int) (ChaosCell, error) {
		spec, policy := plans[i/len(policies)], policies[i%len(policies)]
		cell, err := runChaosCell(sc, spec, policy, opts)
		if err != nil {
			return ChaosCell{}, fmt.Errorf("hierctl: chaos plan %s under %s: %w", spec.Name, policy, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	snap.Cells = cells
	return snap, nil
}

// runChaosCell runs one (plan, policy) cell on the §4.3 module. Every
// policy sees the identical trace, store configuration, scenario failure
// plan, and fault plan, so rows compare degraded-mode behaviour, not
// inputs.
func runChaosCell(sc workload.Scenario, cspec chaos.Spec, policy string, opts ChaosMatrixOptions) (ChaosCell, error) {
	spec, err := StandardModuleCluster()
	if err != nil {
		return ChaosCell{}, err
	}
	trace, err := sc.Trace(opts.Seed)
	if err != nil {
		return ChaosCell{}, err
	}
	sc.ScaleToCluster(trace, spec.Computers())
	if trace.Len() > opts.MaxBins {
		trace = trace.Slice(0, opts.MaxBins)
	}
	failures := sc.FailurePlan(trace)
	span := float64(trace.Len()) * trace.Step
	plan := cspec.Build(opts.Seed, span)
	store, err := NewStore(opts.Seed, sc.StoreConfig())
	if err != nil {
		return ChaosCell{}, err
	}
	cell := ChaosCell{Plan: cspec.Name, Policy: policy, Bins: trace.Len()}
	switch policy {
	case "hierarchical-llc":
		eopts := ExperimentOptions{Scale: 1, Seed: opts.Seed, Fast: opts.Fast, Parallelism: 1}
		mgr, err := NewManager(spec, eopts.Config())
		if err != nil {
			return ChaosCell{}, err
		}
		mgr.InjectPlan(failures)
		mgr.InjectChaos(plan)
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return ChaosCell{}, err
		}
		cell.Completed, cell.Dropped = rec.Completed, rec.Dropped
		cell.Energy, cell.Switches = rec.Energy, rec.Switches
		cell.MeanResponse, cell.ViolationFrac = rec.MeanResponse(), rec.ViolationFrac
		cell.DegradedTicks = rec.DegradedTicks
		cell.StaleObservations = rec.StaleObservations
		cell.SanitizedRejects = rec.SanitizedRejects
	case "threshold":
		pol, err := ThresholdPolicy(0.35, 0.8, 1)
		if err != nil {
			return ChaosCell{}, err
		}
		bcfg := DefaultBaselineConfig()
		bcfg.Seed = opts.Seed
		bcfg.Failures = failures
		bcfg.Chaos = plan
		res, err := RunBaseline(spec, pol, trace, store, bcfg)
		if err != nil {
			return ChaosCell{}, err
		}
		cell.Completed, cell.Dropped = res.Completed, res.Dropped
		cell.Energy, cell.Switches = res.Energy, res.Switches
		cell.MeanResponse, cell.ViolationFrac = res.MeanResponse, res.ViolationFrac
		cell.StaleObservations = res.StaleObservations
		cell.SanitizedRejects = res.SanitizedRejects
	case "centralized":
		ccfg := central.DefaultRunnerConfig()
		ccfg.Seed = opts.Seed
		ccfg.Failures = failures
		ccfg.Chaos = plan
		if opts.Fast {
			ccfg.Controller.NeighbourDepth = 1
		}
		res, err := central.Run(spec, trace, store, ccfg)
		if err != nil {
			return ChaosCell{}, err
		}
		cell.Completed, cell.Dropped = res.Completed, res.Dropped
		cell.Energy, cell.Switches = res.Energy, res.Switches
		cell.MeanResponse, cell.ViolationFrac = res.MeanResponse, res.ViolationFrac
		cell.StaleObservations = res.StaleObservations
		cell.SanitizedRejects = res.SanitizedRejects
	default:
		return ChaosCell{}, fmt.Errorf("unknown matrix policy %q", policy)
	}
	return cell, nil
}

// AblationRow is one line of the EXT2 ablation table.
type AblationRow struct {
	Label         string
	Energy        float64
	MeanResponse  float64
	ViolationFrac float64
	Switches      int
	ExploredPerL1 float64
}

// RunAblations runs the EXT2 design-choice ablations on the §4.3 module:
// the L0 horizon sweep, chattering mitigation on/off, and the γ quantum
// sweep.
func RunAblations(opts ExperimentOptions) ([]AblationRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		return nil, err
	}
	synth := DefaultSyntheticConfig()
	synth.Seed = opts.Seed
	fullTrace, err := SyntheticTrace(synth)
	if err != nil {
		return nil, err
	}
	trace := opts.scaleTrace(fullTrace)

	type variant struct {
		label  string
		mutate func(*Config)
	}
	variants := []variant{
		{"N_L0=1", func(c *Config) { c.L0.Horizon = 1 }},
		{"N_L0=2", func(c *Config) { c.L0.Horizon = 2 }},
		{"N_L0=3 (paper)", func(c *Config) { c.L0.Horizon = 3 }},
		{"N_L0=4", func(c *Config) { c.L0.Horizon = 4 }},
		{"no-chattering-mitigation", func(c *Config) {
			c.L1.UncertaintySamples = false
			c.L2.UncertaintySamples = false
		}},
		{"quantum=0.10", func(c *Config) { c.L1.Quantum = 0.10 }},
		{"quantum=0.20", func(c *Config) { c.L1.Quantum = 0.20 }},
		{"W=0 (no switch penalty)", func(c *Config) { c.L1.SwitchWeight = 0 }},
		{"oracle-forecast (not realizable)", func(c *Config) { c.OracleForecast = true }},
	}
	// Each variant is an independent closed-loop run; fan them out.
	return par.Map(par.Workers(opts.Parallelism), len(variants), func(i int) (AblationRow, error) {
		v := variants[i]
		cfg := opts.Config()
		v.mutate(&cfg)
		mgr, err := NewManager(spec, cfg)
		if err != nil {
			return AblationRow{}, err
		}
		store, err := NewStore(opts.Seed, DefaultStoreConfig())
		if err != nil {
			return AblationRow{}, err
		}
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return AblationRow{}, fmt.Errorf("hierctl: ablation %s: %w", v.label, err)
		}
		return AblationRow{
			Label:         v.label,
			Energy:        rec.Energy,
			MeanResponse:  rec.MeanResponse(),
			ViolationFrac: rec.ViolationFrac,
			Switches:      rec.Switches,
			ExploredPerL1: rec.ExploredPerL1Decision(),
		}, nil
	})
}
