// Package hierctl is a Go implementation of the hierarchical
// limited-lookahead control (LLC) framework for autonomic performance
// management of distributed computing systems described in:
//
//	N. Kandasamy, S. Abdelwahed, M. Khandekar,
//	"A Hierarchical Optimization Framework for Autonomic Performance
//	Management of Distributed Computing Systems", ICDCS 2006.
//
// The library provides:
//
//   - a generic LLC framework for switching hybrid systems (exhaustive
//     and bounded lookahead search, soft constraints, uncertainty-band
//     expected costs);
//   - the paper's three-level controller hierarchy (L0 DVFS control, L1
//     module control with learned abstraction maps, L2 cluster control
//     with regression-tree cost approximations);
//   - the estimation substrate (Kalman workload forecasting, EWMA
//     processing-time filters);
//   - a request-level cluster simulator (DVFS computers, boot dead
//     times, drain semantics, failure injection) to evaluate policies
//     against;
//   - workload generators reproducing the paper's synthetic §4.3 trace
//     and a World-Cup-98-like day;
//   - threshold-based baseline policies for comparison; and
//   - experiment presets regenerating every figure of the paper's
//     evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	spec, _ := hierctl.StandardModuleCluster()
//	cfg := hierctl.DefaultConfig()
//	mgr, _ := hierctl.NewManager(spec, cfg)
//	trace, _ := hierctl.SyntheticTrace(hierctl.DefaultSyntheticConfig())
//	store, _ := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
//	rec, _ := mgr.Run(trace, store)
//	fmt.Println(rec.MeanResponse(), rec.Energy)
package hierctl

import (
	"fmt"
	"io"
	"math/rand"

	"hierctl/internal/baseline"
	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
	"hierctl/internal/core"
	"hierctl/internal/engine"
	"hierctl/internal/fleet"
	"hierctl/internal/obs"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// Aliases re-export the library's primary types so downstream users never
// import internal packages directly.
type (
	// ClusterSpec describes a whole cluster (modules of computers).
	ClusterSpec = cluster.Spec
	// ModuleSpec describes one module.
	ModuleSpec = cluster.ModuleSpec
	// ComputerSpec describes one computer's hardware.
	ComputerSpec = cluster.ComputerSpec
	// Config bundles the hierarchy's tunables.
	Config = core.Config
	// Manager owns one experiment (plant + hierarchy + learning).
	Manager = core.Manager
	// Record holds a run's recorded results.
	Record = core.Record
	// Series is a uniformly sampled time series.
	Series = series.Series
	// Store is the virtual object store.
	Store = workload.Store
	// StoreConfig parameterizes the store.
	StoreConfig = workload.StoreConfig
	// SyntheticConfig parameterizes the §4.3 synthetic trace.
	SyntheticConfig = workload.SyntheticConfig
	// WC98Config parameterizes the World-Cup-98-like trace.
	WC98Config = workload.WC98Config
	// Scenario is one named workload scenario (trace builder, service-time
	// mix, optional failure plan) from the scenario registry.
	Scenario = workload.Scenario
	// FailureEvent is one entry of a scenario's failure plan.
	FailureEvent = workload.FailureEvent
	// BaselinePolicy decides cluster sizing for comparator runs.
	BaselinePolicy = baseline.Policy
	// BaselineResult summarizes a comparator run.
	BaselineResult = baseline.Result
	// BaselineConfig parameterizes a comparator run.
	BaselineConfig = baseline.RunnerConfig
	// Session steps one hierarchy incrementally over streamed arrivals.
	Session = core.Session
	// SessionConfig parameterizes an incremental run.
	SessionConfig = core.SessionConfig
	// BinDecision is the controller output for one observation bin.
	BinDecision = core.BinDecision
	// ModuleDecision is one module's operating state within a BinDecision.
	ModuleDecision = core.ModuleDecision
	// Fleet hosts many tenant hierarchies in one process (online control
	// plane); construct with NewFleet.
	Fleet = fleet.Fleet
	// FleetConfig parameterizes a fleet.
	FleetConfig = fleet.Config
	// TenantConfig describes one fleet tenant.
	TenantConfig = fleet.TenantConfig
	// TenantState is a tenant's progress report.
	TenantState = fleet.TenantState
	// FleetStats summarizes fleet-level counters.
	FleetStats = fleet.Stats
	// BatchEntry is one tenant's slice of a batched ingest call.
	BatchEntry = fleet.BatchEntry
	// BatchResult reports one batch entry's outcome (index-aligned with
	// the entries passed to Fleet.ObserveBatch).
	BatchResult = fleet.BatchResult
	// FleetJournal is the incremental on-disk snapshot journal: a full
	// base snapshot plus delta frames for what changed since, with
	// size/age-triggered compaction. Construct with OpenFleetJournal.
	FleetJournal = fleet.Journal
	// FleetJournalConfig tunes the journal's compaction policy.
	FleetJournalConfig = fleet.JournalConfig
	// FleetJournalStats reports journal size and compaction counters.
	FleetJournalStats = fleet.JournalStats
	// FleetVerifyReport summarizes a read-only integrity scan of a
	// snapshot/journal log (see VerifyFleetJournal).
	FleetVerifyReport = fleet.VerifyReport
	// ChaosPlan is a deterministic sensor-fault plan: faults that corrupt
	// what the controllers observe (never the plant), availability events
	// merged into the run's failure plan, and an optional decision budget
	// that trips the degraded-mode fallback. The zero plan is bit-identical
	// to no plan.
	ChaosPlan = chaos.Plan
	// ChaosFault is one sensor-fault event of a ChaosPlan.
	ChaosFault = chaos.Fault
	// ChaosSpec is one named entry of the chaos-plan registry.
	ChaosSpec = chaos.Spec
	// L3Policy decides the cross-cluster budget split at each L3 boundary
	// of a multi-cluster run.
	L3Policy = engine.L3Policy
	// L3Obs is what an L3 policy sees about one cluster at a boundary.
	L3Obs = engine.L3Obs
	// L3Event records one cross-cluster reallocation.
	L3Event = engine.L3Event
	// ProportionalShare is the reference L3 policy (largest-remainder
	// split proportional to window arrivals, floor 1 per live cluster).
	ProportionalShare = engine.ProportionalShare
	// TelemetryRecorder is the decision flight recorder: a fixed-size,
	// allocation-free ring of per-tick and per-controller records. Attach
	// one with Manager.SetRecorder before running; a nil recorder keeps
	// the hierarchy's zero-allocation decision path.
	TelemetryRecorder = obs.Recorder
	// TelemetryRecord is one flight-recorder entry.
	TelemetryRecord = obs.Record
	// TelemetryLevel identifies which layer wrote a record (tick, l0, l1,
	// l2).
	TelemetryLevel = obs.Level
)

// Fleet sentinel errors, re-exported for errors.Is checks.
var (
	ErrFleetClosed    = fleet.ErrClosed
	ErrTenantNotFound = fleet.ErrNotFound
	ErrTenantExists   = fleet.ErrExists
	// ErrFleetQueueFull is returned per-entry by Fleet.ObserveBatch when
	// the target tenant's home-shard ingest queue is at capacity.
	ErrFleetQueueFull = fleet.ErrQueueFull
	// ErrTenantQuarantined is returned for stepping operations on a tenant
	// whose controller stack panicked; the panic was recovered on the home
	// shard and sibling tenants keep running.
	ErrTenantQuarantined = fleet.ErrTenantQuarantined
)

// NewFleet starts an online control plane hosting tenant hierarchies
// sharded across worker goroutines.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// OpenFleetJournal opens (or creates) the incremental snapshot journal
// at path: an existing log — including one cut short by a crash — is
// restored into the fleet, and a fresh full snapshot is compacted before
// the journal accepts appends. Journal.Append then persists only what
// changed since the previous append.
func OpenFleetJournal(f *Fleet, path string, cfg FleetJournalConfig) (*FleetJournal, error) {
	return fleet.OpenJournal(f, path, cfg)
}

// VerifyFleetJournal scans the snapshot/journal log at path read-only and
// checks every integrity property the restore path relies on (magic
// header, per-frame CRCs, delta ordering) without building any tenant. A
// torn final frame — recoverable crash damage — is reported on the
// returned report, not as an error; corruption is an error.
func VerifyFleetJournal(path string) (*FleetVerifyReport, error) {
	return fleet.VerifyJournalFile(path)
}

// ChaosPlans returns every registered chaos plan's spec sorted by name.
func ChaosPlans() []ChaosSpec { return chaos.Specs() }

// ChaosPlanNames returns the sorted registered chaos-plan names.
func ChaosPlanNames() []string { return chaos.Names() }

// LookupChaosPlan resolves a registered chaos plan by name. Unknown names
// error with the registered list.
func LookupChaosPlan(name string) (ChaosSpec, error) { return chaos.Lookup(name) }

// NewTelemetryRecorder builds a flight recorder retaining the newest
// capacity records. Writes are allocation-free and safe from the L1
// planning fan-out's concurrent goroutines.
func NewTelemetryRecorder(capacity int) (*TelemetryRecorder, error) {
	return obs.NewRecorder(capacity)
}

// WriteTelemetryJSONL streams records as JSON Lines (one object per
// line), the grep/jq-friendly export.
func WriteTelemetryJSONL(w io.Writer, recs []TelemetryRecord) error {
	return obs.WriteJSONL(w, recs)
}

// WriteDecisionTrace renders records as a Chrome trace_event file
// (load it in chrome://tracing or Perfetto). Decide latencies become
// duration slices on per-computer/per-module tracks placed at simulated
// time (tick × periodSeconds); costs, γ splits, frequencies, and the
// operational-computer count become counter tracks.
func WriteDecisionTrace(w io.Writer, recs []TelemetryRecord, periodSeconds float64) error {
	return obs.WriteTrace(w, recs, periodSeconds)
}

// DefaultConfig returns the paper's parameter set (§4.3/§5.2): T_L0 = 30 s,
// N_L0 = 3, T_L1 = T_L2 = 2 min, r* = 4 s, Q = 100, R = 1, W = 8,
// γ_ij quantized at 0.05 and γ_i at 0.1.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewManager builds the controller hierarchy for a cluster, performing the
// offline simulation-based learning of abstraction maps and regression
// trees (§4.2, §5.1).
func NewManager(spec ClusterSpec, cfg Config) (*Manager, error) {
	return core.NewManager(spec, cfg)
}

// StandardComputer returns catalogue computer kind ∈ {0..3} (C1..C4 of
// Fig. 3) under the given unique name.
func StandardComputer(kind int, name string) (ComputerSpec, error) {
	return cluster.StandardComputer(kind, name)
}

// StandardModuleCluster returns the §4.3 single-module cluster: one module
// with computers C1..C4 of Fig. 3.
func StandardModuleCluster() (ClusterSpec, error) {
	m, err := cluster.StandardModule("M1", "M1")
	if err != nil {
		return ClusterSpec{}, err
	}
	return ClusterSpec{Modules: []ModuleSpec{m}}, nil
}

// ScaledModuleCluster returns a single-module cluster of the given size
// cycling through the Fig. 3 catalogue — the m = 6 and m = 10 variants of
// §4.3.
func ScaledModuleCluster(size int) (ClusterSpec, error) {
	m, err := cluster.ScaledModule("M1", "M1", size)
	if err != nil {
		return ClusterSpec{}, err
	}
	return ClusterSpec{Modules: []ModuleSpec{m}}, nil
}

// StandardCluster returns the §5.2 cluster of p heterogeneous modules of
// four computers each (16 computers at p = 4, 20 at p = 5).
func StandardCluster(p int) (ClusterSpec, error) {
	return cluster.StandardCluster(p)
}

// DefaultStoreConfig returns the paper's virtual-store parameters (10 000
// objects, 1000 popular receiving 90% of requests, U(10, 25) ms demands,
// lognormal temporal locality).
func DefaultStoreConfig() StoreConfig { return workload.DefaultStoreConfig() }

// NewStore builds a virtual object store from a seed.
func NewStore(seed int64, cfg StoreConfig) (*Store, error) {
	return workload.NewStore(rand.New(rand.NewSource(seed)), cfg)
}

// DefaultSyntheticConfig returns the §4.3 synthetic trace parameters.
func DefaultSyntheticConfig() SyntheticConfig { return workload.DefaultSyntheticConfig() }

// SyntheticTrace builds the §4.3 synthetic workload trace.
func SyntheticTrace(cfg SyntheticConfig) (*Series, error) { return workload.Synthetic(cfg) }

// DefaultWC98Config returns the Fig. 6 trace parameters.
func DefaultWC98Config() WC98Config { return workload.DefaultWC98Config() }

// WC98Trace builds the World-Cup-98-like day trace of §5.2.
func WC98Trace(cfg WC98Config) (*Series, error) { return workload.WorldCup98Like(cfg) }

// StepTrace builds a square-wave trace for controlled scale-up/down tests.
func StepTrace(bins int, binSeconds, lo, hi float64, period int) (*Series, error) {
	return workload.StepLoad(bins, binSeconds, lo, hi, period)
}

// Scenarios returns every registered workload scenario sorted by name.
func Scenarios() []Scenario { return workload.Scenarios() }

// ScenarioNames returns the sorted registered scenario names;
// parameterized scenarios carry their argument hint ("tracefile:<path>").
func ScenarioNames() []string { return workload.ScenarioNames() }

// LookupScenario resolves a scenario selection by name ("flashcrowd",
// "tracefile:day.csv", ...). Unknown names error with the registered list.
func LookupScenario(name string) (Scenario, error) { return workload.LookupScenario(name) }

// RegisterScenario adds a user-defined scenario to the registry, making it
// selectable by name throughout the experiment runners, CLIs, and daemon.
func RegisterScenario(s Scenario) error { return workload.RegisterScenario(s) }

// AlwaysOnPolicy returns the static all-on/full-speed baseline.
func AlwaysOnPolicy() BaselinePolicy { return baseline.AlwaysOn{} }

// ThresholdPolicy returns the utilization-watermark on/off baseline
// (Pinheiro et al.-style).
func ThresholdPolicy(low, high float64, minOn int) (BaselinePolicy, error) {
	return baseline.NewThreshold(low, high, minOn)
}

// ThresholdDVFSPolicy returns the watermark + frequency-scaling baseline
// (Elnozahy et al.-style).
func ThresholdDVFSPolicy(low, high float64, minOn int, utilTarget float64) (BaselinePolicy, error) {
	return baseline.NewThresholdDVFS(low, high, minOn, utilTarget)
}

// DefaultBaselineConfig returns comparator cadences matched to the
// hierarchy's (fair comparison under the same boot dead time).
func DefaultBaselineConfig() BaselineConfig { return baseline.DefaultRunnerConfig() }

// RunBaseline simulates a comparator policy on the same plant and
// workload machinery the hierarchy uses.
func RunBaseline(spec ClusterSpec, policy BaselinePolicy, trace *Series, store *Store, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.Run(spec, policy, trace, store, cfg)
}

// L3Cluster describes one member of a multi-cluster (L3) run: its own
// cluster, baseline policy, workload, and runner configuration. Each
// member keeps independent RNG streams (seeded by its own Config.Seed).
type L3Cluster struct {
	Name   string
	Spec   ClusterSpec
	Policy BaselinePolicy
	Trace  *Series
	Store  *Store
	Config BaselineConfig
}

// RunMultiCluster advances the clusters under one shared simulation clock
// and runs the L3 policy on top: every l3PeriodSeconds it observes each
// cluster's window (arrivals, completions, response) and reallocates
// budget operational computers across the clusters — the cross-cluster
// layer above the paper's L2. Returns the per-cluster results
// (index-aligned with clusters) and the reallocation history. The run is
// deterministic for a given input tuple.
func RunMultiCluster(clusters []L3Cluster, l3 L3Policy, budget int, l3PeriodSeconds float64) ([]*BaselineResult, []L3Event, error) {
	members := make([]engine.Member, len(clusters))
	finals := make([]func() (*baseline.Result, error), len(clusters))
	for idx, c := range clusters {
		h, finalize, err := baseline.PrepareEngine(c.Spec, c.Policy, c.Trace, c.Store, c.Config)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster %q: %w", c.Name, err)
		}
		members[idx] = engine.Member{Name: c.Name, Harness: h, Trace: c.Trace}
		finals[idx] = finalize
	}
	mc, err := engine.NewMultiCluster(members, l3, budget, l3PeriodSeconds)
	if err != nil {
		return nil, nil, err
	}
	if err := mc.Run(); err != nil {
		return nil, nil, err
	}
	results := make([]*BaselineResult, len(clusters))
	for idx, finalize := range finals {
		if results[idx], err = finalize(); err != nil {
			return nil, nil, fmt.Errorf("cluster %q: %w", clusters[idx].Name, err)
		}
	}
	return results, mc.Events(), nil
}
