module hierctl

go 1.21
