package hierctl

import (
	"fmt"
	"time"

	"hierctl/internal/central"
	"hierctl/internal/par"
)

// ScalabilityRow is one line of the EXT3 hierarchical-vs-centralized
// study, quantifying §3's dimensionality argument: the hierarchy's
// per-period search stays flat as the cluster grows, the flat joint
// controller's does not.
type ScalabilityRow struct {
	// Controller is "hierarchical" or "centralized".
	Controller string
	// Computers is the cluster size.
	Computers int
	// ExploredPerPeriod is the states examined per decision period.
	ExploredPerPeriod float64
	// DecideTimePerPeriod is the online computation per period.
	DecideTimePerPeriod time.Duration
	// MeanResponse and Energy verify both controllers do the same job.
	MeanResponse float64
	Energy       float64
}

// RunScalability runs EXT3: the full hierarchy and the flat centralized
// controller on identical clusters of growing size (4, 8, 12, 16
// computers) under the synthetic workload scaled to the cluster. Both
// controllers share cadences, weights, the fluid prediction model, and
// the forecasting substrate, so the comparison isolates control
// decomposition. The sizes are independent runs, so the sweep fans out
// across opts.Parallelism workers; row order and contents match the
// sequential sweep exactly.
func RunScalability(sizes []int, opts ExperimentOptions) ([]ScalabilityRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{4, 8, 12, 16}
	}
	for _, n := range sizes {
		if n < 4 || n%4 != 0 {
			return nil, fmt.Errorf("hierctl: scalability sizes must be multiples of 4, got %d", n)
		}
	}
	rows := make([]ScalabilityRow, 2*len(sizes))
	err := par.For(par.Workers(opts.Parallelism), len(sizes), func(si int) error {
		n := sizes[si]
		spec, err := StandardCluster(n / 4)
		if err != nil {
			return err
		}
		synth := DefaultSyntheticConfig()
		synth.Seed = opts.Seed
		synth.BaseMin *= float64(n) / 4
		synth.BaseMax *= float64(n) / 4
		fullTrace, err := SyntheticTrace(synth)
		if err != nil {
			return err
		}
		trace := opts.scaleTrace(fullTrace)

		// Hierarchical.
		mgr, err := NewManager(spec, opts.Config())
		if err != nil {
			return err
		}
		store, err := NewStore(opts.Seed, DefaultStoreConfig())
		if err != nil {
			return err
		}
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return err
		}
		// The hierarchy's per-period work: all L0 searches in a T_L1
		// period plus the L1 searches plus the amortized L2 share.
		periods := rec.L1Decisions / max(1, len(spec.Modules))
		explored := float64(rec.L0Explored+rec.L1Explored+rec.L2Explored) / float64(max(1, periods))
		decide := time.Duration(0)
		if periods > 0 {
			decide = (rec.L0Time + rec.L1Time + rec.L2Time) / time.Duration(periods)
		}
		rows[2*si] = ScalabilityRow{
			Controller:          "hierarchical",
			Computers:           n,
			ExploredPerPeriod:   explored,
			DecideTimePerPeriod: decide,
			MeanResponse:        rec.MeanResponse(),
			Energy:              rec.Energy,
		}

		// Centralized.
		ccfg := central.DefaultRunnerConfig()
		ccfg.Seed = opts.Seed
		ccfg.Controller.Parallelism = opts.Parallelism
		if opts.Fast {
			ccfg.Controller.NeighbourDepth = 1
		}
		store, err = NewStore(opts.Seed, DefaultStoreConfig())
		if err != nil {
			return err
		}
		cres, err := central.Run(spec, trace, store, ccfg)
		if err != nil {
			return err
		}
		rows[2*si+1] = ScalabilityRow{
			Controller:          "centralized",
			Computers:           n,
			ExploredPerPeriod:   cres.ExploredPerStep,
			DecideTimePerPeriod: cres.DecideTimePerStep,
			MeanResponse:        cres.MeanResponse,
			Energy:              cres.Energy,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
