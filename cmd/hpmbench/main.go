// Command hpmbench regenerates the paper's figures and tables (see
// DESIGN.md §4 for the experiment index). Figures are rendered as ASCII
// series; tables as aligned text.
//
// Usage:
//
//	hpmbench -fig 3                 # Fig. 3: frequency catalogue
//	hpmbench -fig 4                 # Fig. 4: workload, predictions, computers
//	hpmbench -fig 5                 # Fig. 5: C4 frequencies, response times
//	hpmbench -fig 6 -scale 0.5      # Fig. 6 at half the day
//	hpmbench -fig 7
//	hpmbench -table overhead-module # §4.3 overhead (m = 4, 6, 10)
//	hpmbench -table overhead-cluster
//	hpmbench -table energy          # EXT1: LLC vs baselines
//	hpmbench -table ablations       # EXT2: design-choice ablations
//	hpmbench -table scenarios       # robustness matrix; writes BENCH_scenarios.json
//	hpmbench -table chaos           # degraded-mode matrix; writes BENCH_chaos.json
//	hpmbench -all                   # everything at the given scale
//	hpmbench -llc-json BENCH_llc.json    # branch-and-bound engine snapshot
//	hpmbench -tick-json BENCH_tick.json  # ns/B/allocs per decision snapshot
//	hpmbench -fleet-json BENCH_fleet.json # fleet capacity at 64/1k/10k tenants
//
// Exactly one mode may be selected per invocation (-fig, -table, -all,
// -llc-json, -tick-json, or -fleet-json); conflicting or unknown
// selections are rejected with the valid list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"hierctl"
	"hierctl/internal/metrics"
	"hierctl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	fs := flag.NewFlagSet("hpmbench", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (3-7)")
	table := fs.String("table", "", "table to regenerate: overhead-module, overhead-cluster, energy, ablations, scalability, scenarios, chaos")
	all := fs.Bool("all", false, "regenerate every figure and table")
	scale := fs.Float64("scale", 1, "fraction of each trace to simulate (0, 1]")
	seed := fs.Int64("seed", 1, "random seed")
	fast := fs.Bool("fast", false, "coarse learning grids (quick runs)")
	parallelism := fs.Int("parallelism", 0, "per-pool worker width; pools nest (sweep × module × search) (0 = one per CPU, 1 = fully sequential; results identical)")
	searchParallelism := fs.Int("search-parallelism", 0, "workers fanning each L0 lookahead search's level-0 candidates (0/1 = sequential; decisions identical, explored counters may vary when > 1)")
	llcJSON := fs.String("llc-json", "", "write the branch-and-bound LLC engine benchmark (pruned vs naive on the §4.3 configuration) to this JSON file; honours -parallelism for the pruned-parallel row (the workload is fixed — -seed/-scale/-fast do not apply)")
	tickJSON := fs.String("tick-json", "", "write the decision-tick benchmark (ns, B and allocs per L0/L1/L2 decision, table probe, fleet tenant-ticks/sec) to this JSON file (the workload is fixed and the measurement sequential — -seed/-scale/-fast/-parallelism do not apply)")
	fleetJSON := fs.String("fleet-json", "", "write the fleet capacity benchmark (batched-ingest tenant-ticks/sec and snapshot/restore latency at 64, 1024 and 10240 tenants) to this JSON file; the generation verifies batch-vs-sequential and restore-vs-replay decision equivalence (the configuration is fixed — -seed/-scale/-fast/-parallelism do not apply)")
	scenariosJSON := fs.String("scenarios-json", "BENCH_scenarios.json", "path the robustness-matrix snapshot is written to by -table scenarios")
	chaosJSON := fs.String("chaos-json", "BENCH_chaos.json", "path the degraded-mode matrix snapshot is written to by -table chaos")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprofile); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if *parallelism < 0 {
		return fmt.Errorf("-parallelism %d is negative; use 0 for one worker per CPU or a positive width", *parallelism)
	}
	if *searchParallelism < 0 {
		return fmt.Errorf("-search-parallelism %d is negative; use 0 or 1 for a sequential search or a positive worker width", *searchParallelism)
	}
	if err := validateModes(fs, *fig, *table, *all, *llcJSON, *tickJSON, *fleetJSON); err != nil {
		return err
	}
	opts := hierctl.ExperimentOptions{Scale: *scale, Seed: *seed, Fast: *fast, Parallelism: *parallelism, SearchParallelism: *searchParallelism}
	if *llcJSON != "" {
		return writeLLCBench(w, *llcJSON, *parallelism)
	}
	if *tickJSON != "" {
		return writeTickBench(w, *tickJSON)
	}
	if *fleetJSON != "" {
		return writeFleetBench(w, *fleetJSON)
	}

	if *all {
		for _, f := range []int{3, 4, 5, 6, 7} {
			if err := runFig(w, f, opts); err != nil {
				return err
			}
		}
		for _, t := range allTables {
			if err := runTable(w, t, opts); err != nil {
				return err
			}
		}
		return nil
	}
	if *fig != 0 {
		return runFig(w, *fig, opts)
	}
	if *table == "scenarios" {
		return writeScenarioMatrix(w, *scenariosJSON, *seed, *parallelism)
	}
	if *table == "chaos" {
		return writeChaosMatrix(w, *chaosJSON, *seed, *parallelism)
	}
	if *table != "" {
		return runTable(w, *table, opts)
	}
	return fmt.Errorf("nothing to do: pass one of %s", strings.Join(modeFlags, ", "))
}

// modeFlags are the mutually exclusive top-level selections. allTables is
// the batch `-all` runs in order; validTables additionally accepts the
// snapshot-writing scenarios table — both mode validation and the -all
// loop derive from this single registry, mirroring how the scenario
// registry rejects unknown names with the valid list.
var (
	modeFlags   = []string{"-fig", "-table", "-all", "-llc-json", "-tick-json", "-fleet-json"}
	allTables   = []string{"overhead-module", "overhead-cluster", "energy", "ablations", "scalability"}
	validTables = append(append([]string(nil), allTables...), "scenarios", "chaos")
)

// validateModes rejects conflicting or unknown mode selections with a
// usage error listing the valid modes, and flags that only apply to a
// mode that was not selected.
func validateModes(fs *flag.FlagSet, fig int, table string, all bool, llcJSON, tickJSON, fleetJSON string) error {
	var selected []string
	if fig != 0 {
		selected = append(selected, "-fig")
	}
	if table != "" {
		selected = append(selected, "-table")
	}
	if all {
		selected = append(selected, "-all")
	}
	if llcJSON != "" {
		selected = append(selected, "-llc-json")
	}
	if tickJSON != "" {
		selected = append(selected, "-tick-json")
	}
	if fleetJSON != "" {
		selected = append(selected, "-fleet-json")
	}
	if len(selected) > 1 {
		return fmt.Errorf("conflicting modes %s: pass exactly one of %s",
			strings.Join(selected, " and "), strings.Join(modeFlags, ", "))
	}
	if table != "" {
		known := false
		for _, t := range validTables {
			if table == t {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown table %q; valid tables: %s", table, strings.Join(validTables, ", "))
		}
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["scenarios-json"] && table != "scenarios" {
		return fmt.Errorf("-scenarios-json only applies to -table scenarios")
	}
	if explicit["chaos-json"] && table != "chaos" {
		return fmt.Errorf("-chaos-json only applies to -table chaos")
	}
	// The tick benchmark is deliberately sequential (its B/allocs columns
	// are a deterministic projection CI diffs); reject worker-width flags
	// rather than silently ignoring them.
	if tickJSON != "" && (explicit["parallelism"] || explicit["search-parallelism"]) {
		return fmt.Errorf("-parallelism/-search-parallelism do not apply to -tick-json (the tick measurement is sequential by design)")
	}
	// The fleet benchmark's parallelism comes from the fleet's own shard
	// workers; reject the sweep worker-width flags rather than silently
	// ignoring them.
	if fleetJSON != "" && (explicit["parallelism"] || explicit["search-parallelism"]) {
		return fmt.Errorf("-parallelism/-search-parallelism do not apply to -fleet-json (the fleet's shard workers set the parallelism)")
	}
	return nil
}

func runFig(w io.Writer, fig int, opts hierctl.ExperimentOptions) error {
	switch fig {
	case 3:
		tab, err := hierctl.Fig3Table()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Fig. 3: operating frequencies available within each computer ==")
		fmt.Fprintln(w, tab)
		return nil
	case 4, 5:
		rec, err := hierctl.RunFig4Fig5(opts)
		if err != nil {
			return err
		}
		if fig == 4 {
			fmt.Fprintln(w, "== Fig. 4: synthetic workload, Kalman predictions, operational computers ==")
			fmt.Fprint(w, rec.Trace.ASCIIPlot("workload (requests per 30 s bin)", 100, 10))
			fmt.Fprint(w, rec.PredictedL1.ASCIIPlot("predicted arrivals per T_L1 (Kalman)", 100, 8))
			fmt.Fprint(w, rec.ActualL1.ASCIIPlot("actual arrivals per T_L1", 100, 8))
			fmt.Fprint(w, rec.Operational.ASCIIPlot("operational computers", 100, 6))
			pr, ar := rec.PredictedL1.Values, rec.ActualL1.Values
			mae, err := metrics.MAE(pr, ar)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "forecast MAE: %.0f requests per T_L1 (mean actual %.0f)\n\n", mae, rec.ActualL1.Mean())
			return nil
		}
		fmt.Fprintln(w, "== Fig. 5: C4 operating frequency and achieved response times ==")
		if s, ok := rec.FreqByComputer["M1-C4"]; ok {
			fmt.Fprint(w, s.ASCIIPlot("C4 frequency (Hz)", 100, 8))
		}
		fmt.Fprint(w, rec.ResponseMean.ASCIIPlot("mean response per T_L0 bin (s)", 100, 8))
		fmt.Fprintf(w, "mean response %.3f s; target %.1f s met in %.1f%% of intervals\n\n",
			rec.MeanResponse(), rec.TargetResponse, 100*(1-rec.ViolationFrac))
		return nil
	case 6, 7:
		rec, err := hierctl.RunFig6Fig7(opts)
		if err != nil {
			return err
		}
		if fig == 6 {
			fmt.Fprintln(w, "== Fig. 6: WC'98-like workload and operational computers ==")
			fmt.Fprint(w, rec.Trace.ASCIIPlot("workload (requests per 2 min bin)", 100, 10))
			fmt.Fprint(w, rec.Operational.ASCIIPlot("operational computers (of 16)", 100, 8))
			fmt.Fprintf(w, "mean response %.3f s; violations %.1f%%; energy %.0f\n\n",
				rec.MeanResponse(), 100*rec.ViolationFrac, rec.Energy)
			return nil
		}
		fmt.Fprintln(w, "== Fig. 7: load distribution factor γ_i per module ==")
		for i, g := range rec.GammaModules {
			fmt.Fprint(w, g.ASCIIPlot(fmt.Sprintf("module %d γ", i+1), 100, 5))
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %d (have 3-7)", fig)
	}
}

func runTable(w io.Writer, name string, opts hierctl.ExperimentOptions) error {
	switch name {
	case "overhead-module":
		fmt.Fprintln(w, "== §4.3 controller overhead: module sizes (paper: ≈858 states, 2.0 s / 1.1 s / 2.0 s on MATLAB) ==")
		tab := metrics.NewTable("config", "computers", "states/L1 period", "decide/period", "offline learn", "mean resp (s)", "energy")
		rows, err := hierctl.RunOverheadModules(hierctl.DefaultOverheadCases(), opts)
		if err != nil {
			return err
		}
		for _, row := range rows {
			tab.AddRow(row.Label, row.Computers, row.ExploredPerL1, row.DecisionTime.String(), row.LearnTime.String(), row.MeanResponse, row.Energy)
		}
		fmt.Fprintln(w, tab)
		return nil
	case "overhead-cluster":
		fmt.Fprintln(w, "== §5.2 controller overhead: cluster sizes (paper: ≈2.5 s at 16, ≈3.4 s at 20 on MATLAB) ==")
		tab := metrics.NewTable("config", "computers", "states/L1 period", "decide/period", "offline learn", "mean resp (s)", "energy")
		rows, err := hierctl.RunOverheadClusters([]int{4, 5}, opts)
		if err != nil {
			return err
		}
		for _, row := range rows {
			tab.AddRow(row.Label, row.Computers, row.ExploredPerL1, row.DecisionTime.String(), row.LearnTime.String(), row.MeanResponse, row.Energy)
		}
		fmt.Fprintln(w, tab)
		return nil
	case "energy":
		fmt.Fprintln(w, "== EXT1: energy and QoS, hierarchical LLC vs baselines (synthetic day, §4.3 module) ==")
		rows, err := hierctl.RunEnergyComparison(opts)
		if err != nil {
			return err
		}
		tab := metrics.NewTable("policy", "energy", "mean resp (s)", "p95 (s)", "violations", "switches", "completed", "profit ($)")
		for _, r := range rows {
			tab.AddRow(r.Policy, r.Energy, r.MeanResponse, r.ResponseP95, r.ViolationFrac, r.Switches, r.Completed, r.ProfitUSD)
		}
		fmt.Fprintln(w, tab)
		return nil
	case "scalability":
		fmt.Fprintln(w, "== EXT3: hierarchical vs centralized control overhead (§3's dimensionality argument) ==")
		rows, err := hierctl.RunScalability(nil, opts)
		if err != nil {
			return err
		}
		tab := metrics.NewTable("controller", "computers", "states/period", "decide/period", "mean resp (s)", "energy")
		for _, r := range rows {
			tab.AddRow(r.Controller, r.Computers, r.ExploredPerPeriod, r.DecideTimePerPeriod.String(), r.MeanResponse, r.Energy)
		}
		fmt.Fprintln(w, tab)
		return nil
	case "ablations":
		fmt.Fprintln(w, "== EXT2: design-choice ablations (synthetic day, §4.3 module) ==")
		rows, err := hierctl.RunAblations(opts)
		if err != nil {
			return err
		}
		tab := metrics.NewTable("variant", "energy", "mean resp (s)", "violations", "switches", "states/L1")
		for _, r := range rows {
			tab.AddRow(r.Label, r.Energy, r.MeanResponse, r.ViolationFrac, r.Switches, r.ExploredPerL1)
		}
		fmt.Fprintln(w, tab)
		return nil
	default:
		return fmt.Errorf("unknown table %q; valid tables: %s", name, strings.Join(validTables, ", "))
	}
}

// writeScenarioMatrix runs the robustness matrix at its canonical
// benchmark configuration (DefaultScenarioMatrixOptions; -scale and -fast
// do not apply, matching the -llc-json convention), prints the table, and
// writes the BENCH_scenarios.json snapshot. The snapshot carries no
// wall-clock fields, so regeneration with the same -seed is bit-identical
// at any -parallelism.
func writeScenarioMatrix(w io.Writer, path string, seed int64, parallelism int) error {
	opts := hierctl.DefaultScenarioMatrixOptions()
	opts.Seed = seed
	opts.Parallelism = parallelism
	snap, err := hierctl.RunScenarioMatrix(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Robustness matrix: every registered scenario x {LLC hierarchy, threshold, centralized} ==")
	tab := metrics.NewTable("scenario", "policy", "bins", "completed", "dropped", "energy", "mean resp (s)", "violations", "states/period")
	for _, c := range snap.Cells {
		tab.AddRow(c.Scenario, c.Policy, c.Bins, c.Completed, c.Dropped, c.Energy, c.MeanResponse, c.ViolationFrac, c.ExploredPerPeriod)
	}
	fmt.Fprintln(w, tab)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot written to %s\n", path)
	return nil
}

// writeChaosMatrix runs the degraded-mode matrix at its canonical
// benchmark configuration (DefaultChaosMatrixOptions; -scale and -fast do
// not apply, matching the scenario-matrix convention), prints the table,
// and writes the BENCH_chaos.json snapshot. The snapshot carries no
// wall-clock fields, so regeneration with the same -seed is bit-identical
// at any -parallelism.
func writeChaosMatrix(w io.Writer, path string, seed int64, parallelism int) error {
	opts := hierctl.DefaultChaosMatrixOptions()
	opts.Seed = seed
	opts.Parallelism = parallelism
	snap, err := hierctl.RunChaosMatrix(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Degraded-mode matrix: every registered chaos plan x {LLC hierarchy, threshold, centralized} on %s ==\n", snap.Scenario)
	tab := metrics.NewTable("plan", "policy", "bins", "completed", "dropped", "energy", "mean resp (s)", "violations", "degraded", "stale", "rejects")
	for _, c := range snap.Cells {
		tab.AddRow(c.Plan, c.Policy, c.Bins, c.Completed, c.Dropped, c.Energy, c.MeanResponse, c.ViolationFrac, c.DegradedTicks, c.StaleObservations, c.SanitizedRejects)
	}
	fmt.Fprintln(w, tab)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot written to %s\n", path)
	return nil
}

// writeTickBench measures the steady-state decision tick (ns, heap bytes
// and heap allocations per L0/L1/L2 decision and per table probe, plus
// fleet tenant-ticks/sec), prints the rows, and writes the
// BENCH_tick.json snapshot. The byte/alloc columns are deterministic in
// steady state and are the projection CI diffs across regenerations;
// ns/decision and tenant-ticks/sec are wall-clock and vary run to run.
func writeTickBench(w io.Writer, path string) error {
	snap, err := hierctl.RunTickBench(256, 64)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "== Decision tick: ns / B / allocs per decision (steady state, warm controllers) ==")
	for _, r := range snap.Rows {
		if r.TenantTicksPerSec > 0 {
			fmt.Fprintf(w, "%-12s %8d ticks      %9.0f ns/tick      %6.0f tenant-ticks/sec\n",
				r.Level, r.Decisions, r.NsPerDecision, r.TenantTicksPerSec)
			continue
		}
		fmt.Fprintf(w, "%-12s %8d decisions  %9.0f ns/decision  %6.0f B/decision  %4.0f allocs/decision\n",
			r.Level, r.Decisions, r.NsPerDecision, r.BytesPerDecision, r.AllocsPerDecision)
	}
	fmt.Fprintf(w, "snapshot written to %s\n", path)
	return nil
}

// writeFleetBench measures fleet capacity at the canonical tenant scales
// (64, 1024 and 10240 tenants, 16 bins each, constant aggregate offered
// load), prints the rows, and writes the BENCH_fleet.json snapshot. The
// generation doubles as an equivalence check: it fails the checks fields
// if batched ingest diverges from sequential Observe calls or a restored
// fleet diverges from the original on the next bin. Tenant counts, bins,
// per-bin load and snapshot bytes are deterministic and are the
// projection CI diffs across regenerations; throughput, creation and
// latency columns are wall-clock and vary run to run.
func writeFleetBench(w io.Writer, path string) error {
	snap, err := hierctl.RunFleetBench(16, []int{64, 1024, 10240})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fleet capacity: batched ingest, snapshot and restore across tenant scales ==")
	for _, r := range snap.Rows {
		fmt.Fprintf(w, "%6d tenants  %6.0f tenant-ticks/sec  %8.0f ns/tick  create %6.2fs  snapshot %7.1fms  restore %7.1fms  %9d B\n",
			r.Tenants, r.TenantTicksPerSec, r.NsPerTick, r.CreateSeconds, r.SnapshotMillis, r.RestoreMillis, r.SnapshotBytes)
	}
	fmt.Fprintf(w, "checks: batchEqualsSequential=%v restoreEqualsReplay=%v\n",
		snap.Checks.BatchEqualsSequential, snap.Checks.RestoreEqualsReplay)
	fmt.Fprintf(w, "snapshot written to %s\n", path)
	return nil
}

// writeLLCBench measures the branch-and-bound LLC engine against the
// naive search on the §4.3 configuration, prints the comparison, and
// writes the BENCH_llc.json snapshot (the generation doubles as a
// decision-equivalence check across engines). parallelism sets the
// pruned-parallel row's worker count, following the -parallelism
// convention (0 = one per CPU).
func writeLLCBench(w io.Writer, path string, parallelism int) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	snap, err := hierctl.RunLLCBench(400, parallelism)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "== LLC engine: branch-and-bound vs naive search (§4.3 configuration) ==")
	for _, r := range snap.Rows {
		fmt.Fprintf(w, "%-16s explored %8d (%.2fx naive)  %9.0f ns/decision (%.2fx speedup)\n",
			r.Engine, r.Explored, r.ExploredVsNaive, r.NsPerDecision, r.SpeedupVsNaive)
	}
	fmt.Fprintf(w, "snapshot written to %s\n", path)
	return nil
}
