package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 3") {
		t.Errorf("missing header:\n%s", out.String())
	}
}

func TestRunFig4And5ShareExperiment(t *testing.T) {
	for _, fig := range []string{"4", "5"} {
		var out bytes.Buffer
		if err := run([]string{"-fig", fig, "-scale", "0.02", "-fast"}, &out); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(out.String(), "Fig. "+fig) {
			t.Errorf("fig %s missing header:\n%s", fig, out.String())
		}
	}
}

func TestRunFig6And7(t *testing.T) {
	for _, fig := range []string{"6", "7"} {
		var out bytes.Buffer
		if err := run([]string{"-fig", fig, "-scale", "0.02", "-fast"}, &out); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(out.String(), "Fig. "+fig) {
			t.Errorf("fig %s missing header:\n%s", fig, out.String())
		}
	}
}

func TestRunEnergyTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "energy", "-scale", "0.02", "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchical-llc", "always-on", "threshold", "profit"} {
		if !strings.Contains(s, want) {
			t.Errorf("energy table missing %q:\n%s", want, s)
		}
	}
}

func TestRunScalabilityTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "scalability", "-scale", "0.02", "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "hierarchical") || !strings.Contains(s, "centralized") {
		t.Errorf("scalability table incomplete:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // nothing to do
		{"-fig", "99"},               // unknown figure
		{"-table", "nope"},           // unknown table
		{"-fig", "4", "-scale", "7"}, // bad scale
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "3", "-parallelism", "-1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative -parallelism: got %v, want a clear error", err)
	}
}

// TestRunScenariosTable smokes the robustness matrix table: it must print
// one row per (scenario, policy) cell and write a snapshot that
// regenerates bit-identically at -parallelism 1.
func TestRunScenariosTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_scenarios.json")
	var out bytes.Buffer
	if err := run([]string{"-table", "scenarios", "-scenarios-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Robustness matrix", "flashcrowd", "failstorm", "hierarchical-llc", "threshold", "centralized", "snapshot written"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "scenarios", "-scenarios-json", path, "-parallelism", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("snapshot differs between default and -parallelism 1 regenerations")
	}
}
