package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hierctl"
)

func TestRunFig3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 3") {
		t.Errorf("missing header:\n%s", out.String())
	}
}

func TestRunFig4And5ShareExperiment(t *testing.T) {
	for _, fig := range []string{"4", "5"} {
		var out bytes.Buffer
		if err := run([]string{"-fig", fig, "-scale", "0.02", "-fast"}, &out); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(out.String(), "Fig. "+fig) {
			t.Errorf("fig %s missing header:\n%s", fig, out.String())
		}
	}
}

func TestRunFig6And7(t *testing.T) {
	for _, fig := range []string{"6", "7"} {
		var out bytes.Buffer
		if err := run([]string{"-fig", fig, "-scale", "0.02", "-fast"}, &out); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(out.String(), "Fig. "+fig) {
			t.Errorf("fig %s missing header:\n%s", fig, out.String())
		}
	}
}

func TestRunEnergyTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "energy", "-scale", "0.02", "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchical-llc", "always-on", "threshold", "profit"} {
		if !strings.Contains(s, want) {
			t.Errorf("energy table missing %q:\n%s", want, s)
		}
	}
}

func TestRunScalabilityTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "scalability", "-scale", "0.02", "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "hierarchical") || !strings.Contains(s, "centralized") {
		t.Errorf("scalability table incomplete:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // nothing to do
		{"-fig", "99"},               // unknown figure
		{"-table", "nope"},           // unknown table
		{"-fig", "4", "-scale", "7"}, // bad scale
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// TestRunRejectsConflictingModes pins the mode validation: exactly one of
// -fig/-table/-all/-llc-json/-tick-json per invocation, unknown tables
// rejected with the valid list, and mode-specific flags rejected outside
// their mode.
func TestRunRejectsConflictingModes(t *testing.T) {
	conflicts := [][]string{
		{"-fig", "3", "-table", "energy"},
		{"-fig", "3", "-all"},
		{"-table", "energy", "-llc-json", "x.json"},
		{"-llc-json", "x.json", "-tick-json", "y.json"},
		{"-all", "-tick-json", "y.json"},
		{"-tick-json", "y.json", "-fleet-json", "z.json"},
	}
	for _, args := range conflicts {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil || !strings.Contains(err.Error(), "exactly one of") {
			t.Errorf("args %v: got %v, want a conflicting-modes usage error", args, err)
		}
	}
	// Unknown table names list the registry of valid tables.
	var out bytes.Buffer
	err := run([]string{"-table", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "valid tables") || !strings.Contains(err.Error(), "scenarios") {
		t.Errorf("unknown table: got %v, want the valid-table list", err)
	}
	// -scenarios-json only applies to -table scenarios.
	err = run([]string{"-fig", "3", "-scenarios-json", "x.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "scenarios-json") {
		t.Errorf("-scenarios-json with -fig: got %v, want usage error", err)
	}
	// Worker-width flags do not apply to the sequential tick measurement.
	err = run([]string{"-tick-json", "x.json", "-parallelism", "4"}, &out)
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Errorf("-parallelism with -tick-json: got %v, want usage error", err)
	}
	// Nor to the fleet benchmark, whose parallelism is the fleet's shards.
	err = run([]string{"-fleet-json", "x.json", "-parallelism", "4"}, &out)
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("-parallelism with -fleet-json: got %v, want usage error", err)
	}
	// The nothing-to-do error lists the modes.
	err = run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-tick-json") {
		t.Errorf("empty args: got %v, want the mode list", err)
	}
}

// TestValidTablesMatchRunTable pins the table registry against runTable's
// switch: every name validateModes accepts must reach a real runner (the
// probe uses an invalid scale so each runner fails fast on validation,
// never on "unknown table").
func TestValidTablesMatchRunTable(t *testing.T) {
	for _, name := range allTables {
		var out bytes.Buffer
		err := runTable(&out, name, hierctl.ExperimentOptions{Scale: -1})
		if err == nil || strings.Contains(err.Error(), "unknown table") {
			t.Errorf("table %q: got %v; registry and runTable switch have drifted", name, err)
		}
	}
}

// TestRunTickBenchSnapshot smokes -tick-json: rows for every level, the
// deterministic alloc columns at their pinned steady-state values, and a
// regeneration that agrees on them.
func TestRunTickBenchSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_tick.json")
	var out bytes.Buffer
	if err := run([]string{"-tick-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Decision tick", "L0-decide", "L1-decide", "L2-decide", "table-probe", "fleet-64", "tenant-ticks/sec", "snapshot written"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Rows []struct {
			Level             string  `json:"level"`
			AllocsPerDecision float64 `json:"allocsPerDecision"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"L0-decide": 0, "L1-decide": 2, "L2-decide": 2, "table-probe": 0, "fleet-64": -1}
	for _, r := range snap.Rows {
		if w, ok := want[r.Level]; !ok || r.AllocsPerDecision != w {
			t.Errorf("row %s: %v allocs/decision, want %v", r.Level, r.AllocsPerDecision, want[r.Level])
		}
		delete(want, r.Level)
	}
	for level := range want {
		t.Errorf("missing row %s", level)
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "3", "-parallelism", "-1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative -parallelism: got %v, want a clear error", err)
	}
}

// TestRunScenariosTable smokes the robustness matrix table: it must print
// one row per (scenario, policy) cell and write a snapshot that
// regenerates bit-identically at -parallelism 1.
func TestRunScenariosTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_scenarios.json")
	var out bytes.Buffer
	if err := run([]string{"-table", "scenarios", "-scenarios-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Robustness matrix", "flashcrowd", "failstorm", "hierarchical-llc", "threshold", "centralized", "snapshot written"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "scenarios", "-scenarios-json", path, "-parallelism", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("snapshot differs between default and -parallelism 1 regenerations")
	}
}
