package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hierctl"
)

func TestRunLLCModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchical-llc", "mean response", "energy", "states per L1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBaselinePolicies(t *testing.T) {
	for _, pol := range []string{"threshold", "threshold-dvfs", "always-on"} {
		var out bytes.Buffer
		if err := run([]string{"-policy", pol, "-scale", "0.02"}, &out); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !strings.Contains(out.String(), "completed") {
			t.Errorf("%s output missing summary:\n%s", pol, out.String())
		}
	}
}

func TestRunWC98Cluster(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-cluster", "2", "-workload", "wc98", "-scale", "0.03", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         8") {
		t.Errorf("cluster size not reported:\n%s", out.String())
	}
}

func TestRunScaledModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-module-size", "6", "-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         6") {
		t.Errorf("module size not reported:\n%s", out.String())
	}
}

// TestRunL3Farm smokes the cross-cluster mode: two clusters under one
// shared clock with the proportional-share layer splitting the budget.
func TestRunL3Farm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"proportional-share", "cluster-1", "cluster-2", "reallocations"} {
		if !strings.Contains(s, want) {
			t.Errorf("l3 output missing %q:\n%s", want, s)
		}
	}
}

// TestRunL3Deterministic pins the shared-clock merge at the CLI level:
// the same flags produce byte-identical reports.
func TestRunL3Deterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("l3 runs diverge:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "nope"},
		{"-workload", "nope"},
		{"-badflag"},
		{"-l3", "1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-parallelism", "-2", "-fast", "-scale", "0.02"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative -parallelism: got %v, want a clear error", err)
	}
}

// TestRunUnknownWorkloadListsScenarios pins the bugfix contract: an
// unknown -workload value must error with the registered scenario list.
func TestRunUnknownWorkloadListsScenarios(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "nope"}, &out)
	if err == nil {
		t.Fatal("unknown workload: want error")
	}
	for _, frag := range []string{`"nope"`, "registered:", "flashcrowd", "synthetic"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

// TestRunScenarioWorkloads smokes the new scenarios end to end through
// the CLI under both the LLC hierarchy and a baseline policy.
func TestRunScenarioWorkloads(t *testing.T) {
	for _, name := range []string{"flashcrowd", "heavytail", "sawtooth"} {
		var out bytes.Buffer
		if err := run([]string{"-workload", name, "-scale", "0.05", "-fast"}, &out); err != nil {
			t.Fatalf("llc under %s: %v", name, err)
		}
		if !strings.Contains(out.String(), "hierarchical-llc") {
			t.Errorf("%s output missing policy line:\n%s", name, out.String())
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-workload", "failstorm", "-policy", "threshold", "-scale", "0.05"}, &out); err != nil {
		t.Fatalf("threshold under failstorm: %v", err)
	}
	if !strings.Contains(out.String(), "completed") {
		t.Errorf("failstorm baseline output missing summary:\n%s", out.String())
	}
}

// TestRunTracefileWorkload replays an hpmgen-emitted CSV through the
// simulator via the tracefile scenario.
func TestRunTracefileWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "day.csv")
	trace, err := hierctl.StepTrace(32, 30, 150, 900, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-workload", "tracefile:" + path, "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hierarchical-llc") {
		t.Errorf("tracefile run missing summary:\n%s", out.String())
	}
}
