package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hierctl"
)

func TestRunLLCModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchical-llc", "mean response", "energy", "states per L1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBaselinePolicies(t *testing.T) {
	for _, pol := range []string{"threshold", "threshold-dvfs", "always-on"} {
		var out bytes.Buffer
		if err := run([]string{"-policy", pol, "-scale", "0.02"}, &out); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !strings.Contains(out.String(), "completed") {
			t.Errorf("%s output missing summary:\n%s", pol, out.String())
		}
	}
}

func TestRunWC98Cluster(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-cluster", "2", "-workload", "wc98", "-scale", "0.03", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         8") {
		t.Errorf("cluster size not reported:\n%s", out.String())
	}
}

func TestRunScaledModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-module-size", "6", "-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         6") {
		t.Errorf("module size not reported:\n%s", out.String())
	}
}

// TestRunL3Farm smokes the cross-cluster mode: two clusters under one
// shared clock with the proportional-share layer splitting the budget.
func TestRunL3Farm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"proportional-share", "cluster-1", "cluster-2", "reallocations"} {
		if !strings.Contains(s, want) {
			t.Errorf("l3 output missing %q:\n%s", want, s)
		}
	}
}

// TestRunL3Deterministic pins the shared-clock merge at the CLI level:
// the same flags produce byte-identical reports.
func TestRunL3Deterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-l3", "2", "-scale", "0.05"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("l3 runs diverge:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "nope"},
		{"-workload", "nope"},
		{"-badflag"},
		{"-l3", "1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-parallelism", "-2", "-fast", "-scale", "0.02"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative -parallelism: got %v, want a clear error", err)
	}
}

// TestRunUnknownWorkloadListsScenarios pins the bugfix contract: an
// unknown -workload value must error with the registered scenario list.
func TestRunUnknownWorkloadListsScenarios(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "nope"}, &out)
	if err == nil {
		t.Fatal("unknown workload: want error")
	}
	for _, frag := range []string{`"nope"`, "registered:", "flashcrowd", "synthetic"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

// TestRunScenarioWorkloads smokes the new scenarios end to end through
// the CLI under both the LLC hierarchy and a baseline policy.
func TestRunScenarioWorkloads(t *testing.T) {
	for _, name := range []string{"flashcrowd", "heavytail", "sawtooth"} {
		var out bytes.Buffer
		if err := run([]string{"-workload", name, "-scale", "0.05", "-fast"}, &out); err != nil {
			t.Fatalf("llc under %s: %v", name, err)
		}
		if !strings.Contains(out.String(), "hierarchical-llc") {
			t.Errorf("%s output missing policy line:\n%s", name, out.String())
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-workload", "failstorm", "-policy", "threshold", "-scale", "0.05"}, &out); err != nil {
		t.Fatalf("threshold under failstorm: %v", err)
	}
	if !strings.Contains(out.String(), "completed") {
		t.Errorf("failstorm baseline output missing summary:\n%s", out.String())
	}
}

// TestRunTracefileWorkload replays an hpmgen-emitted CSV through the
// simulator via the tracefile scenario.
func TestRunTracefileWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "day.csv")
	trace, err := hierctl.StepTrace(32, 30, 150, 900, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-workload", "tracefile:" + path, "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hierarchical-llc") {
		t.Errorf("tracefile run missing summary:\n%s", out.String())
	}
}

// TestRunTraceExport drives the flight-recorder path end to end: a
// recorded LLC run must emit a valid Chrome trace_event file and a JSONL
// stream covering every hierarchy level, without changing the summary.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "decisions.json")
	jsonlPath := filepath.Join(dir, "decisions.jsonl")
	var out bytes.Buffer
	// Two modules so the L2 arbiter is in the loop (single-module clusters
	// have no L2 controller and would leave the level uncovered).
	err := run([]string{"-cluster", "2", "-scale", "0.02", "-fast", "-trace", tracePath, "-trace-jsonl", jsonlPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hierarchical-llc") {
		t.Errorf("recorded run lost its summary:\n%s", out.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace file is not valid trace_event JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" || len(tf.TraceEvents) == 0 {
		t.Fatalf("trace shape wrong: unit %q, %d events", tf.DisplayTimeUnit, len(tf.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range tf.TraceEvents {
		phases[ev.Ph]++
	}
	for _, ph := range []string{"M", "X", "C"} {
		if phases[ph] == 0 {
			t.Errorf("trace has no %q events (%v)", ph, phases)
		}
	}

	jf, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	levels := map[string]int{}
	lines := 0
	sc := bufio.NewScanner(jf)
	for sc.Scan() {
		lines++
		var rec struct {
			Level string `json:"level"`
			Tick  int64  `json:"tick"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not a JSON record: %v", lines, err)
		}
		levels[rec.Level]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, lv := range []string{"tick", "l0", "l1", "l2"} {
		if levels[lv] == 0 {
			t.Errorf("JSONL stream has no %q records (%d lines: %v)", lv, lines, levels)
		}
	}
}

// TestRunTraceRequiresLLC pins the flag contract: decision tracing only
// instruments the LLC hierarchy.
func TestRunTraceRequiresLLC(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "threshold", "-trace", "out.json"},
		{"-l3", "2", "-trace-jsonl", "out.jsonl"},
	} {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil || !strings.Contains(err.Error(), "llc") {
			t.Errorf("args %v: got %v, want an llc-only error", args, err)
		}
	}
}

// TestRunProfiles checks the pprof flags produce non-empty profile files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-fast", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
