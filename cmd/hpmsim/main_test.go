package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLLCModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchical-llc", "mean response", "energy", "states per L1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBaselinePolicies(t *testing.T) {
	for _, pol := range []string{"threshold", "threshold-dvfs", "always-on"} {
		var out bytes.Buffer
		if err := run([]string{"-policy", pol, "-scale", "0.02"}, &out); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !strings.Contains(out.String(), "completed") {
			t.Errorf("%s output missing summary:\n%s", pol, out.String())
		}
	}
}

func TestRunWC98Cluster(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-cluster", "2", "-workload", "wc98", "-scale", "0.03", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         8") {
		t.Errorf("cluster size not reported:\n%s", out.String())
	}
}

func TestRunScaledModule(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-module-size", "6", "-scale", "0.02", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "computers         6") {
		t.Errorf("module size not reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "nope"},
		{"-workload", "nope"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-parallelism", "-2", "-fast", "-scale", "0.02"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative -parallelism: got %v, want a clear error", err)
	}
}
