// Command hpmsim runs one closed-loop simulation — the hierarchical LLC
// controller or a baseline policy — against a chosen cluster and a named
// workload scenario, and prints a summary.
//
// Usage:
//
//	hpmsim                                  # §4.3 module, synthetic load, LLC
//	hpmsim -cluster 4 -workload wc98        # §5.2: 4 modules / 16 computers
//	hpmsim -workload flashcrowd             # any registered scenario
//	hpmsim -workload failstorm              # correlated failures mid-peak
//	hpmsim -workload tracefile:day.csv      # replay a recorded trace
//	hpmsim -policy threshold -workload wc98
//	hpmsim -policy always-on -scale 0.25
//	hpmsim -l3 2 -workload wc98             # 2 clusters, shared clock, L3 budget
//	hpmsim -fast -trace decisions.json      # Chrome trace_event decision timeline
//	hpmsim -fast -trace-jsonl decisions.jsonl
//	hpmsim -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -trace and -trace-jsonl attach the decision flight recorder to the LLC
// hierarchy and export every tick/L0/L1/L2 record; load the -trace file in
// chrome://tracing or https://ui.perfetto.dev. The profiles are standard
// pprof files (go tool pprof cpu.pprof).
//
// Scenario traces are amplitude-scaled to the selected cluster size (the
// paper's §4.3 recipe), and scenario failure plans are injected for every
// policy. hpmgen -list enumerates the registered scenarios.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hierctl"
	"hierctl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("hpmsim", flag.ContinueOnError)
	policy := fs.String("policy", "llc", "control policy: llc, threshold, threshold-dvfs, always-on")
	l3 := fs.Int("l3", 0, "run N clusters under one shared clock with an L3 layer reallocating a shared computer budget (threshold policy per cluster; 0 = single-cluster mode)")
	l3Budget := fs.Int("l3-budget", 0, "total operational-computer budget across the -l3 clusters (0 = 75% of all computers)")
	workloadFlag := fs.String("workload", "synthetic", "workload scenario name (hpmgen -list enumerates; tracefile:<path> replays a CSV)")
	clusterFlag := fs.Int("cluster", 0, "number of 4-computer modules (0 = single §4.3 module)")
	moduleSize := fs.Int("module-size", 4, "computers in the single module (when -cluster 0)")
	scale := fs.Float64("scale", 1, "fraction of the trace to simulate (0, 1]")
	seed := fs.Int64("seed", 1, "random seed")
	fast := fs.Bool("fast", false, "coarse learning grids (quick runs)")
	parallelism := fs.Int("parallelism", 0, "per-pool worker width; pools nest (sweep × module × search) (0 = one per CPU, 1 = fully sequential; results identical)")
	searchParallelism := fs.Int("search-parallelism", 0, "workers fanning each L0 lookahead search's level-0 candidates (0/1 = sequential; decisions identical, explored counters may vary when > 1)")
	artifacts := fs.String("artifacts", "", "directory caching offline learning results (must exist)")
	traceOut := fs.String("trace", "", "write the LLC decision timeline as a Chrome trace_event file (chrome://tracing / Perfetto)")
	traceJSONL := fs.String("trace-jsonl", "", "write the LLC decision records as JSON Lines")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprofile); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	wantTrace := *traceOut != "" || *traceJSONL != ""
	if wantTrace && (*policy != "llc" || *l3 > 0) {
		return fmt.Errorf("-trace/-trace-jsonl record the LLC hierarchy's decisions; they need -policy llc without -l3")
	}
	if *parallelism < 0 {
		return fmt.Errorf("-parallelism %d is negative; use 0 for one worker per CPU or a positive width", *parallelism)
	}
	if *searchParallelism < 0 {
		return fmt.Errorf("-search-parallelism %d is negative; use 0 or 1 for a sequential search or a positive worker width", *searchParallelism)
	}

	var spec hierctl.ClusterSpec
	var err error
	if *clusterFlag > 0 {
		spec, err = hierctl.StandardCluster(*clusterFlag)
	} else if *moduleSize == 4 {
		spec, err = hierctl.StandardModuleCluster()
	} else {
		spec, err = hierctl.ScaledModuleCluster(*moduleSize)
	}
	if err != nil {
		return err
	}

	sc, err := hierctl.LookupScenario(*workloadFlag)
	if err != nil {
		return err
	}

	if *l3 > 0 {
		if *l3 < 2 {
			return fmt.Errorf("-l3 %d: a cross-cluster layer needs at least 2 clusters", *l3)
		}
		return runL3(stdout, spec, sc, *l3, *l3Budget, *seed, *scale)
	}

	trace, err := sc.Trace(*seed)
	if err != nil {
		return err
	}
	sc.ScaleToCluster(trace, spec.Computers())
	opts := hierctl.ExperimentOptions{Scale: *scale, Seed: *seed, Fast: *fast, Parallelism: *parallelism, SearchParallelism: *searchParallelism}
	trace = trimTrace(trace, *scale)
	// Entries addressing slots outside the selected cluster are skipped by
	// the runners themselves (the shared injection contract).
	plan := sc.FailurePlan(trace)

	store, err := hierctl.NewStore(*seed, sc.StoreConfig())
	if err != nil {
		return err
	}

	if *policy == "llc" {
		cfg := opts.Config()
		cfg.ArtifactDir = *artifacts
		mgr, err := hierctl.NewManager(spec, cfg)
		if err != nil {
			return err
		}
		var flight *hierctl.TelemetryRecorder
		if wantTrace {
			if flight, err = hierctl.NewTelemetryRecorder(recorderCapacity(trace, spec, cfg.L0.PeriodSeconds)); err != nil {
				return err
			}
			mgr.SetRecorder(flight)
		}
		mgr.InjectPlan(plan)
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return err
		}
		if wantTrace {
			if err := exportTelemetry(stdout, flight, *traceOut, *traceJSONL, cfg.L0.PeriodSeconds); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "policy            hierarchical-llc\n")
		fmt.Fprintf(stdout, "computers         %d\n", spec.Computers())
		fmt.Fprintf(stdout, "requests          %d completed, %d dropped\n", rec.Completed, rec.Dropped)
		fmt.Fprintf(stdout, "mean response     %.3f s (target %.1f s)\n", rec.MeanResponse(), rec.TargetResponse)
		fmt.Fprintf(stdout, "response p50/p95  %.3f / %.3f s (p99 %.3f, max %.3f)\n",
			rec.ResponseP50, rec.ResponseP95, rec.ResponseP99, rec.ResponseMax)
		fmt.Fprintf(stdout, "violation frac    %.3f of intervals\n", rec.ViolationFrac)
		fmt.Fprintf(stdout, "energy            %.1f units\n", rec.Energy)
		fmt.Fprintf(stdout, "power switches    %d\n", rec.Switches)
		fmt.Fprintf(stdout, "operational mean  %.2f computers\n", rec.Operational.Mean())
		fmt.Fprintf(stdout, "states per L1     %.0f\n", rec.ExploredPerL1Decision())
		fmt.Fprintf(stdout, "decide per period %v\n", rec.DecisionTimePerPeriod())
		fmt.Fprintf(stdout, "offline learning  %v\n", rec.LearnTime)
		return nil
	}

	var pol hierctl.BaselinePolicy
	switch *policy {
	case "threshold":
		pol, err = hierctl.ThresholdPolicy(0.35, 0.8, 1)
	case "threshold-dvfs":
		pol, err = hierctl.ThresholdDVFSPolicy(0.35, 0.8, 1, 0.8)
	case "always-on":
		pol = hierctl.AlwaysOnPolicy()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if err != nil {
		return err
	}
	bcfg := hierctl.DefaultBaselineConfig()
	bcfg.Seed = *seed
	bcfg.Failures = plan
	res, err := hierctl.RunBaseline(spec, pol, trace, store, bcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "policy            %s\n", res.Policy)
	fmt.Fprintf(stdout, "computers         %d\n", spec.Computers())
	fmt.Fprintf(stdout, "requests          %d completed, %d dropped\n", res.Completed, res.Dropped)
	fmt.Fprintf(stdout, "mean response     %.3f s (target %.1f s)\n", res.MeanResponse, bcfg.TargetResponse)
	fmt.Fprintf(stdout, "violation frac    %.3f of intervals\n", res.ViolationFrac)
	fmt.Fprintf(stdout, "energy            %.1f units\n", res.Energy)
	fmt.Fprintf(stdout, "power switches    %d\n", res.Switches)
	fmt.Fprintf(stdout, "operational mean  %.2f computers\n", res.Operational.Mean())
	return nil
}

// runL3 drives n copies of the selected cluster under one shared
// simulation clock, each fed the scenario under a different seed, with the
// proportional-share L3 layer reallocating a shared computer budget every
// 240 s (see engine.MultiCluster). Each cluster runs the threshold policy
// — the budget cap rides on the baseline adaptation hook.
func runL3(stdout io.Writer, spec hierctl.ClusterSpec, sc hierctl.Scenario, n, budget int, seed int64, scale float64) error {
	clusters := make([]hierctl.L3Cluster, n)
	total := 0
	for idx := range clusters {
		tr, err := sc.Trace(seed + int64(idx))
		if err != nil {
			return err
		}
		sc.ScaleToCluster(tr, spec.Computers())
		tr = trimTrace(tr, scale)
		// Stagger the clusters' loads (full, half, third, ...) so the
		// budget split has an asymmetry to track.
		for i := range tr.Values {
			tr.Values[i] /= float64(idx + 1)
		}
		store, err := hierctl.NewStore(seed+int64(idx), sc.StoreConfig())
		if err != nil {
			return err
		}
		pol, err := hierctl.ThresholdPolicy(0.35, 0.8, 1)
		if err != nil {
			return err
		}
		bcfg := hierctl.DefaultBaselineConfig()
		bcfg.Seed = seed + int64(idx)
		bcfg.Failures = sc.FailurePlan(tr)
		clusters[idx] = hierctl.L3Cluster{
			Name:   fmt.Sprintf("cluster-%d", idx+1),
			Spec:   spec,
			Policy: pol,
			Trace:  tr,
			Store:  store,
			Config: bcfg,
		}
		total += spec.Computers()
	}
	if budget <= 0 {
		budget = total * 3 / 4
	}
	const l3Period = 240.0
	results, events, err := hierctl.RunMultiCluster(clusters, hierctl.ProportionalShare{}, budget, l3Period)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "l3 policy         proportional-share (%d clusters, budget %d of %d computers, period %.0f s)\n",
		n, budget, total, l3Period)
	for idx, res := range results {
		fmt.Fprintf(stdout, "%-17s %d completed, %d dropped, mean response %.3f s, energy %.1f, operational mean %.2f\n",
			clusters[idx].Name, res.Completed, res.Dropped, res.MeanResponse, res.Energy, res.Operational.Mean())
	}
	fmt.Fprintf(stdout, "reallocations     %d\n", len(events))
	show := events
	if len(show) > 8 {
		show = show[:5]
	}
	for _, ev := range show {
		fmt.Fprintf(stdout, "  t=%6.0fs budgets %v (window arrivals %v)\n", ev.Time, ev.Budgets, ev.Arrived)
	}
	if len(events) > 8 {
		fmt.Fprintf(stdout, "  ... %d more ...\n", len(events)-6)
		last := events[len(events)-1]
		fmt.Fprintf(stdout, "  t=%6.0fs budgets %v (window arrivals %v)\n", last.Time, last.Budgets, last.Arrived)
	}
	return nil
}

// recorderCapacity sizes the flight recorder to hold the whole run: one
// tick record plus one L0 record per computer every period, and the L1/L2
// summary + detail bursts on their (sparser) periods — bounded above by
// one record per computer and per module every tick. Clamped so a huge
// -cluster/-scale combination cannot balloon memory; if the ring still
// wraps, the export keeps the newest window and says so.
func recorderCapacity(tr *hierctl.Series, spec hierctl.ClusterSpec, periodSeconds float64) int {
	ticks := int(float64(tr.Len())*tr.Step/periodSeconds) + 2
	perTick := 2 + 2*spec.Computers() + len(spec.Modules)
	n := ticks * perTick
	if n > 1<<20 {
		n = 1 << 20
	}
	if n < 1024 {
		n = 1024
	}
	return n
}

// exportTelemetry writes the recorded decision stream to the requested
// trace/JSONL files.
func exportTelemetry(stdout io.Writer, flight *hierctl.TelemetryRecorder, tracePath, jsonlPath string, periodSeconds float64) error {
	recs := flight.Window(nil, 0)
	if dropped := flight.Total() - uint64(len(recs)); dropped > 0 {
		fmt.Fprintf(stdout, "telemetry         ring wrapped: exporting newest %d of %d records\n", len(recs), flight.Total())
	}
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		if err := write(tracePath, func(w io.Writer) error {
			return hierctl.WriteDecisionTrace(w, recs, periodSeconds)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace             %s (%d records; load in chrome://tracing or ui.perfetto.dev)\n", tracePath, len(recs))
	}
	if jsonlPath != "" {
		if err := write(jsonlPath, func(w io.Writer) error {
			return hierctl.WriteTelemetryJSONL(w, recs)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace-jsonl       %s (%d records)\n", jsonlPath, len(recs))
	}
	return nil
}

func trimTrace(tr *hierctl.Series, scale float64) *hierctl.Series {
	n := int(float64(tr.Len()) * scale)
	if n < 16 {
		n = min(16, tr.Len())
	}
	return tr.Slice(0, n)
}
