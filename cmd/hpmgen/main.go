// Command hpmgen generates workload traces (requests per bin) as CSV on
// stdout or into a file.
//
// Usage:
//
//	hpmgen -profile synthetic            # §4.3 trace, 6400 30-second bins
//	hpmgen -profile wc98 -out day.csv    # Fig. 6 World-Cup-98-like day
//	hpmgen -profile step -lo 150 -hi 3600
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hierctl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hpmgen", flag.ContinueOnError)
	profile := fs.String("profile", "synthetic", "trace profile: synthetic, wc98, or step")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "noise seed")
	bins := fs.Int("bins", 0, "override bin count (0 = profile default)")
	lo := fs.Float64("lo", 150, "step profile: low requests per bin")
	hi := fs.Float64("hi", 3600, "step profile: high requests per bin")
	period := fs.Int("period", 20, "step profile: bins per half-cycle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var trace *hierctl.Series
	var err error
	switch *profile {
	case "synthetic":
		cfg := hierctl.DefaultSyntheticConfig()
		cfg.Seed = *seed
		if *bins > 0 {
			cfg.Bins = *bins
			cfg.NoiseBounds = []int{cfg.Bins / 5, cfg.Bins / 5 * 3, cfg.Bins}
		}
		trace, err = hierctl.SyntheticTrace(cfg)
	case "wc98":
		cfg := hierctl.DefaultWC98Config()
		cfg.Seed = *seed
		if *bins > 0 {
			cfg.Bins = *bins
		}
		trace, err = hierctl.WC98Trace(cfg)
	case "step":
		n := *bins
		if n == 0 {
			n = 120
		}
		trace, err = hierctl.StepTrace(n, 30, *lo, *hi, *period)
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteCSV(w)
}
