// Command hpmgen generates, inspects, and lists workload scenario traces.
// Traces are emitted as CSV (time_s,value rows) on stdout or into a file;
// the same files replay as first-class scenarios via "tracefile:<path>".
//
// Usage:
//
//	hpmgen -list                         # enumerate registered scenarios
//	hpmgen -profile synthetic            # §4.3 trace, 6400 30-second bins
//	hpmgen -profile wc98 -out day.csv    # Fig. 6 World-Cup-98-like day
//	hpmgen -profile flashcrowd -seed 7   # any registered scenario
//	hpmgen -profile step -lo 150 -hi 3600
//	hpmgen -profile heavytail -inspect   # summary stats instead of CSV
//	hpmgen -profile tracefile:day.csv -inspect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hierctl"
	"hierctl/internal/metrics"
	"hierctl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("hpmgen", flag.ContinueOnError)
	profile := fs.String("profile", "synthetic", "scenario to build (see -list; tracefile:<path> replays a CSV)")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "noise seed")
	bins := fs.Int("bins", 0, "override bin count for synthetic/wc98/step (0 = profile default)")
	lo := fs.Float64("lo", 150, "step profile: low requests per bin")
	hi := fs.Float64("hi", 3600, "step profile: high requests per bin")
	period := fs.Int("period", 20, "step profile: bins per half-cycle")
	list := fs.Bool("list", false, "list the registered scenarios and exit")
	inspect := fs.Bool("inspect", false, "print a scenario summary (bins, load stats, failure plan) instead of CSV")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprofile); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}

	if *list {
		return listScenarios(stdout)
	}

	sc, err := hierctl.LookupScenario(*profile)
	if err != nil {
		return err
	}

	// Legacy overrides rebuild the three seed profiles with custom shapes;
	// every other scenario comes straight from the registry builder.
	var trace *hierctl.Series
	switch {
	case sc.Name == "synthetic" && *bins > 0:
		cfg := hierctl.DefaultSyntheticConfig()
		cfg.Seed = *seed
		cfg.Bins = *bins
		cfg.NoiseBounds = []int{cfg.Bins / 5, cfg.Bins / 5 * 3, cfg.Bins}
		trace, err = hierctl.SyntheticTrace(cfg)
	case sc.Name == "wc98" && *bins > 0:
		cfg := hierctl.DefaultWC98Config()
		cfg.Seed = *seed
		cfg.Bins = *bins
		trace, err = hierctl.WC98Trace(cfg)
	case sc.Name == "step":
		n := *bins
		if n == 0 {
			n = 120
		}
		trace, err = hierctl.StepTrace(n, 30, *lo, *hi, *period)
	default:
		trace, err = sc.Trace(*seed)
	}
	if err != nil {
		return err
	}

	if *inspect {
		return inspectScenario(stdout, sc, trace)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteCSV(w)
}

// listScenarios renders the registry as an aligned table.
func listScenarios(w io.Writer) error {
	tab := metrics.NewTable("scenario", "sized for", "description")
	for _, sc := range hierctl.Scenarios() {
		name := sc.Name
		if sc.NeedsArg {
			name += ":<path>"
		}
		sized := "-"
		if sc.Computers > 0 {
			sized = fmt.Sprintf("%d computers", sc.Computers)
		}
		tab.AddRow(name, sized, sc.Description)
	}
	fmt.Fprintln(w, tab)
	return nil
}

// inspectScenario prints the scenario's shape without emitting the CSV.
func inspectScenario(w io.Writer, sc hierctl.Scenario, trace *hierctl.Series) error {
	fmt.Fprintf(w, "scenario      %s\n", sc.Name)
	if sc.Arg != "" {
		fmt.Fprintf(w, "source        %s\n", sc.Arg)
	}
	fmt.Fprintf(w, "description   %s\n", sc.Description)
	fmt.Fprintf(w, "bins          %d x %.0f s (%.1f h)\n", trace.Len(), trace.Step, (trace.End()-trace.Start)/3600)
	fmt.Fprintf(w, "requests      %.0f total\n", trace.Sum())
	fmt.Fprintf(w, "per bin       mean %.0f, min %.0f, max %.0f\n", trace.Mean(), trace.Min(), trace.Max())
	if sc.Computers > 0 {
		fmt.Fprintf(w, "sized for     %d computers\n", sc.Computers)
	}
	plan := sc.FailurePlan(trace)
	fmt.Fprintf(w, "failure plan  %d events\n", len(plan))
	for _, f := range plan {
		kind := "fail"
		if f.Repair {
			kind = "repair"
		}
		fmt.Fprintf(w, "  t=%-8.0f %-6s module %d computer %d\n", f.At, kind, f.Module, f.Comp)
	}
	store := sc.StoreConfig()
	if store.TailFrac > 0 {
		fmt.Fprintf(w, "service mix   %.0f%% Pareto tail (alpha %.2f, cap %.2f s) over U(%.0f, %.0f) ms\n",
			100*store.TailFrac, store.TailAlpha, store.TailCap, 1000*store.MinDemand, 1000*store.MaxDemand)
	} else {
		fmt.Fprintf(w, "service mix   U(%.0f, %.0f) ms\n", 1000*store.MinDemand, 1000*store.MaxDemand)
	}
	return nil
}
