package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSyntheticToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "synthetic", "-bins", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 101 { // header + 100 bins
		t.Errorf("got %d lines, want 101", len(lines))
	}
	if lines[0] != "time_s,value" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunWC98ToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.csv")
	var out bytes.Buffer
	if err := run([]string{"-profile", "wc98", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,value") {
		t.Error("file missing header")
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -out is used")
	}
}

func TestRunStepProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "step", "-bins", "4", "-lo", "1", "-hi", "9", "-period", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "9") {
		t.Errorf("step profile missing high value:\n%s", out.String())
	}
}

func TestRunUnknownProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Error("unknown profile: want error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestRunListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"synthetic", "wc98", "flashcrowd", "diurnal-noisy", "heavytail", "failstorm", "sawtooth", "tracefile:<path>"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunScenarioProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "flashcrowd", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 100 {
		t.Errorf("flashcrowd emitted %d lines", len(lines))
	}
}

func TestRunInspect(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "failstorm", "-inspect"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"scenario      failstorm", "failure plan", "fail", "repair", "per bin"} {
		if !strings.Contains(s, frag) {
			t.Errorf("-inspect output missing %q:\n%s", frag, s)
		}
	}
	out.Reset()
	if err := run([]string{"-profile", "heavytail", "-inspect"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Pareto tail") {
		t.Errorf("heavytail inspect missing service mix:\n%s", out.String())
	}
}

// TestEmitReplayRoundTrip pins the tracefile contract end to end at the
// CLI: a trace emitted by hpmgen, replayed via the tracefile scenario,
// re-emitted, is byte-identical.
func TestEmitReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "day.csv")
	var first bytes.Buffer
	if err := run([]string{"-profile", "synthetic", "-bins", "64", "-out", path}, &first); err != nil {
		t.Fatal(err)
	}
	var replay bytes.Buffer
	if err := run([]string{"-profile", "tracefile:" + path}, &replay); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.String() != string(orig) {
		t.Error("replayed CSV differs from the emitted trace")
	}
}

func TestUnknownProfileListsScenarios(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-profile", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "flashcrowd") {
		t.Errorf("unknown profile error %v should list registered scenarios", err)
	}
}
