package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSyntheticToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "synthetic", "-bins", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 101 { // header + 100 bins
		t.Errorf("got %d lines, want 101", len(lines))
	}
	if lines[0] != "time_s,value" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunWC98ToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.csv")
	var out bytes.Buffer
	if err := run([]string{"-profile", "wc98", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,value") {
		t.Error("file missing header")
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -out is used")
	}
}

func TestRunStepProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "step", "-bins", "4", "-lo", "1", "-hi", "9", "-period", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "9") {
		t.Errorf("step profile missing high value:\n%s", out.String())
	}
}

func TestRunUnknownProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Error("unknown profile: want error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("bad flag: want error")
	}
}
