package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAcceptsValidExposition(t *testing.T) {
	in := strings.NewReader(`# HELP up Target liveness.
# TYPE up gauge
up 1
`)
	var out bytes.Buffer
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("output = %q", out.String())
	}
}

// TestRunRejectsMalformedExposition smokes the error path; the full
// accept/reject matrix lives with the linter in internal/metrics.
func TestRunRejectsMalformedExposition(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": "# HELP a A.\n# TYPE a gauge\n# TYPE a gauge\na 1\n",
		"bare garbage":   "not a metric line\n",
	}
	for name, in := range cases {
		var out bytes.Buffer
		if err := run(strings.NewReader(in), &out); err == nil {
			t.Errorf("%s: want an error", name)
		}
	}
}
