// Command hpmlint validates Prometheus text-exposition input on stdin —
// the check CI runs against a live hpmserve /metrics scrape.
//
// Usage:
//
//	curl -s localhost:8700/metrics | hpmlint
//
// Exit status 0 means the input parses under the strict linter (HELP/TYPE
// once per family, escaped help and label values, cumulative histogram
// buckets with a +Inf bucket equal to _count); 1 means it does not, with
// the reason on stderr.
package main

import (
	"fmt"
	"io"
	"os"

	"hierctl/internal/metrics"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, stdout io.Writer) error {
	if err := metrics.LintPromText(r); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "ok")
	return nil
}
