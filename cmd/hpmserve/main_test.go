package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hierctl"
)

func testHandler(t *testing.T) (http.Handler, *hierctl.Fleet) {
	t.Helper()
	f := hierctl.NewFleet(hierctl.FleetConfig{Shards: 2})
	t.Cleanup(f.Close)
	return newServer(f, 1<<12).routes(), f
}

func doJSON(t *testing.T, h http.Handler, method, path, body string, wantStatus int) map[string]any {
	t.Helper()
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != wantStatus {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, path, w.Code, wantStatus, w.Body.String())
	}
	out := map[string]any{}
	if len(w.Body.Bytes()) > 0 && strings.Contains(w.Header().Get("Content-Type"), "json") {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, w.Body.String(), err)
		}
	}
	return out
}

func TestServerTenantLifecycle(t *testing.T) {
	h, _ := testHandler(t)
	created := doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"web","moduleSize":2,"fast":true,"binSeconds":30,"seed":7}`, http.StatusCreated)
	if created["computers"].(float64) != 2 {
		t.Errorf("computers = %v, want 2", created["computers"])
	}

	// Feed a few observation bins; each response is a full decision.
	var dec map[string]any
	for i := 0; i < 4; i++ {
		dec = doJSON(t, h, http.MethodPost, "/v1/tenants/web/observe", `{"count":600}`, http.StatusOK)
	}
	if dec["bin"].(float64) != 3 {
		t.Errorf("bin = %v, want 3", dec["bin"])
	}
	mods, ok := dec["modules"].([]any)
	if !ok || len(mods) != 1 {
		t.Fatalf("modules = %v, want 1 module decision", dec["modules"])
	}
	m := mods[0].(map[string]any)
	for _, key := range []string{"alpha", "gamma", "freqIdx", "freqHz"} {
		if arr, ok := m[key].([]any); !ok || len(arr) != 2 {
			t.Errorf("module decision %s = %v, want 2 entries", key, m[key])
		}
	}
	if dec["operational"].(float64) < 1 {
		t.Error("no operational computers under load")
	}

	st := doJSON(t, h, http.MethodGet, "/v1/tenants/web/state", "", http.StatusOK)
	if st["bins"].(float64) != 4 {
		t.Errorf("state bins = %v, want 4", st["bins"])
	}
	if st["lastDecision"] == nil {
		t.Error("state missing last decision")
	}

	list := doJSON(t, h, http.MethodGet, "/v1/tenants", "", http.StatusOK)
	if tenants := list["tenants"].([]any); len(tenants) != 1 {
		t.Errorf("tenant list = %v, want 1 entry", tenants)
	}

	final := doJSON(t, h, http.MethodDelete, "/v1/tenants/web", "", http.StatusOK)
	if final["completed"].(float64) <= 0 {
		t.Errorf("final record completed = %v, want > 0", final["completed"])
	}
	doJSON(t, h, http.MethodGet, "/v1/tenants/web/state", "", http.StatusNotFound)
}

func TestServerErrors(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants", `{"moduleSize":2}`, http.StatusBadRequest) // no id
	doJSON(t, h, http.MethodPost, "/v1/tenants", `{broken`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants/nope/observe", `{"count":1}`, http.StatusNotFound)
	doJSON(t, h, http.MethodDelete, "/v1/tenants/nope", "", http.StatusNotFound)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"a","moduleSize":2,"fast":true}`, http.StatusCreated)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"a","moduleSize":2,"fast":true}`, http.StatusConflict)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"b","moduleSize":2,"fast":true,"binSeconds":45}`, http.StatusBadRequest)
	req := httptest.NewRequest(http.MethodPut, "/v1/tenants", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/tenants = %d, want 405", w.Code)
	}
}

func TestServerMetrics(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"m1","moduleSize":2,"fast":true}`, http.StatusCreated)
	doJSON(t, h, http.MethodPost, "/v1/tenants/m1/observe", `{"count":300}`, http.StatusOK)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE hpmserve_tenants gauge",
		"hpmserve_tenants 1",
		"# TYPE hpmserve_observations_total counter",
		"hpmserve_observations_total 1",
		"hpmserve_ticks_total 1",
		`hpmserve_tenant_bins{tenant="m1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// syncBuffer lets the daemon goroutine write stdout while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesAndSnapshotsOnShutdown drives the real daemon loop: boot
// on an ephemeral port, create a tenant over HTTP, shut down via context
// cancellation, and verify the snapshot landed and restores on reboot.
func TestRunServesAndSnapshotsOnShutdown(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.snap")
	start := func(ctx context.Context, out *syncBuffer) chan error {
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shards", "2", "-snapshot", snap}, out)
		}()
		return errc
	}
	waitAddr := func(out *syncBuffer) string {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := out.String(); strings.Contains(s, "listening on ") {
				line := s[strings.Index(s, "listening on ")+len("listening on "):]
				return strings.Fields(line)[0]
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("daemon never reported its address; output: %q", out.String())
		return ""
	}

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := start(ctx, out)
	addr := waitAddr(out)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/tenants", "application/json",
		strings.NewReader(`{"id":"web","moduleSize":2,"fast":true,"binSeconds":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create tenant = %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/tenants/web/observe", "application/json",
		strings.NewReader(`{"count":500}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"freqHz"`) {
		t.Fatalf("observe = %d %s", resp.StatusCode, body)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("no shutdown snapshot; output: %q", out.String())
	}

	// Reboot: the daemon restores the tenant from the snapshot.
	ctx2, cancel2 := context.WithCancel(context.Background())
	out2 := &syncBuffer{}
	errc2 := start(ctx2, out2)
	addr2 := waitAddr(out2)
	resp, err = http.Get("http://" + addr2 + "/v1/tenants/web/state")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"bins":1`) {
		t.Fatalf("restored state = %d %s", resp.StatusCode, body)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("run (second boot): %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-snapshot-interval", "5s"}, io.Discard); err == nil {
		t.Error("interval without snapshot path: want error")
	}
	if err := run(ctx, []string{"-snapshot-interval", "-5s", "-snapshot", "x"}, io.Discard); err == nil {
		t.Error("negative interval: want error")
	}
}

func TestServerRejectsOversizedRequests(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"big","modules":100000}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"big","moduleSize":100000}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"ok","moduleSize":2,"fast":true}`, http.StatusCreated)
	doJSON(t, h, http.MethodPost, "/v1/tenants/ok/observe", `{"count":1e15}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants/ok/observe", `{"count":-5}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants/ok/observe", `{"count":100}`, http.StatusOK)
}

func TestServerRejectsBadTenantIDs(t *testing.T) {
	h, _ := testHandler(t)
	for _, id := range []string{"a/b", "a b", "a\tb"} {
		body, _ := json.Marshal(map[string]any{"id": id, "moduleSize": 2, "fast": true})
		doJSON(t, h, http.MethodPost, "/v1/tenants", string(body), http.StatusBadRequest)
	}
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"`+strings.Repeat("x", 200)+`","moduleSize":2,"fast":true}`, http.StatusBadRequest)
}

func TestServerRejectsBadBinSeconds(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"c","moduleSize":2,"fast":true,"binSeconds":3e9}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"c","moduleSize":2,"fast":true,"binSeconds":-30}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"c","moduleSize":2,"fast":true,"binSeconds":0}`, http.StatusBadRequest)
}

// TestServerRejectsBadClusterShapes pins the createTenant validation of
// non-positive and conflicting cluster-shape fields: negative modules and
// non-positive moduleSize must 400 instead of reaching the cluster
// constructors, and a non-default moduleSize alongside modules > 1 — which
// used to be silently ignored — is now an explicit conflict.
func TestServerRejectsBadClusterShapes(t *testing.T) {
	h, _ := testHandler(t)
	for _, body := range []string{
		`{"id":"bad","modules":-1}`,
		`{"id":"bad","moduleSize":0}`,
		`{"id":"bad","moduleSize":-4}`,
		`{"id":"bad","modules":-100000}`,
		`{"id":"bad","modules":2,"moduleSize":6}`,
		`{"id":"bad","modules":3,"moduleSize":1}`,
	} {
		resp := doJSON(t, h, http.MethodPost, "/v1/tenants", body, http.StatusBadRequest)
		if msg, _ := resp["error"].(string); msg == "" {
			t.Errorf("%s: want a JSON error payload, got %v", body, resp)
		}
	}
	// An explicit default moduleSize alongside modules is not a conflict,
	// and modules == 1 still honours moduleSize.
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"one","modules":1,"moduleSize":2,"fast":true}`, http.StatusCreated)
	st := doJSON(t, h, http.MethodGet, "/v1/tenants/one", "", http.StatusOK)
	if n, _ := st["computers"].(float64); n != 2 {
		t.Errorf("modules=1 moduleSize=2 built %v computers, want 2", st["computers"])
	}
}

// TestServerScenarioSeeding exercises tenant creation from a named
// scenario: the tenant adopts the scenario's bin cadence, the requested
// prefix is fed at creation, and further observations continue the bin
// sequence.
func TestServerScenarioSeeding(t *testing.T) {
	h, _ := testHandler(t)
	created := doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"smoke","moduleSize":2,"fast":true,"scenario":"flashcrowd","scenarioBins":4}`, http.StatusCreated)
	if created["scenario"] != "flashcrowd" {
		t.Errorf("scenario = %v", created["scenario"])
	}
	if created["scenarioBinsFed"].(float64) != 4 {
		t.Errorf("scenarioBinsFed = %v, want 4", created["scenarioBinsFed"])
	}
	if created["binSeconds"].(float64) != 30 {
		t.Errorf("binSeconds = %v, want the scenario trace's 30", created["binSeconds"])
	}
	st := doJSON(t, h, http.MethodGet, "/v1/tenants/smoke/state", "", http.StatusOK)
	if st["bins"].(float64) != 4 {
		t.Errorf("bins = %v, want 4 after seeding", st["bins"])
	}
	// The next observation continues the sequence.
	dec := doJSON(t, h, http.MethodPost, "/v1/tenants/smoke/observe", `{"count":500}`, http.StatusOK)
	if dec["bin"].(float64) != 4 {
		t.Errorf("bin = %v, want 4", dec["bin"])
	}
}

// TestServerScenarioAdoptsCadence pins that a scenario with a non-default
// bin width (wc98: 120 s) overrides the decode default.
func TestServerScenarioAdoptsCadence(t *testing.T) {
	h, _ := testHandler(t)
	created := doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"cup","moduleSize":2,"fast":true,"scenario":"wc98"}`, http.StatusCreated)
	if created["binSeconds"].(float64) != 120 {
		t.Errorf("binSeconds = %v, want 120 from the wc98 trace", created["binSeconds"])
	}
}

// TestServerRejectsUnknownScenario pins the bugfix contract: unknown
// scenario names 400 with the registered list, and scenarioBins without a
// scenario is a conflict.
func TestServerRejectsUnknownScenario(t *testing.T) {
	h, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/tenants",
		strings.NewReader(`{"id":"x","moduleSize":2,"fast":true,"scenario":"nope"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	body := w.Body.String()
	for _, frag := range []string{"unknown scenario", "registered:", "flashcrowd"} {
		if !strings.Contains(body, frag) {
			t.Errorf("error body missing %q: %s", frag, body)
		}
	}
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"x","moduleSize":2,"scenarioBins":4}`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"x","moduleSize":2,"scenario":"flashcrowd","scenarioBins":100000}`, http.StatusBadRequest)
}

// TestServerRejectsParameterizedScenario pins the security contract:
// tracefile:<path> must not be reachable through the API (it would let
// clients make the daemon read arbitrary host files).
func TestServerRejectsParameterizedScenario(t *testing.T) {
	h, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/tenants",
		strings.NewReader(`{"id":"x","moduleSize":2,"fast":true,"scenario":"tracefile:/etc/passwd"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if !strings.Contains(w.Body.String(), "not available via the API") {
		t.Errorf("unexpected error body: %s", w.Body.String())
	}
	// The bare name is rejected too (arg hint from the lookup).
	req = httptest.NewRequest(http.MethodPost, "/v1/tenants",
		strings.NewReader(`{"id":"x","moduleSize":2,"fast":true,"scenario":"tracefile"}`))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bare tracefile: status %d, want 400", w.Code)
	}
}
