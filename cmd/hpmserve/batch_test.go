package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hierctl"
)

func createFastTenant(t *testing.T, h http.Handler, id string) {
	t.Helper()
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		fmt.Sprintf(`{"id":%q,"moduleSize":2,"fast":true,"binSeconds":30}`, id), http.StatusCreated)
}

func tenantBins(t *testing.T, h http.Handler, id string) float64 {
	t.Helper()
	st := doJSON(t, h, http.MethodGet, "/v1/tenants/"+id+"/state", "", http.StatusOK)
	bins, _ := st["bins"].(float64)
	return bins
}

// TestServerObserveBatch drives the happy path: one call carries several
// tenants' bin runs — including two entries for the same tenant, which
// apply consecutively — and decisions:true echoes each entry's last
// control decision.
func TestServerObserveBatch(t *testing.T) {
	h, _ := testHandler(t)
	createFastTenant(t, h, "a")
	createFastTenant(t, h, "b")

	resp := doJSON(t, h, http.MethodPost, "/v1/observe:batch",
		`{"entries":[{"tenant":"a","counts":[300,400]},{"tenant":"b","counts":[200]},{"tenant":"a","counts":[500]}],"decisions":true}`,
		http.StatusOK)
	if resp["applied"].(float64) != 4 {
		t.Errorf("applied = %v, want 4", resp["applied"])
	}
	if resp["rejected"].(float64) != 0 {
		t.Errorf("rejected = %v, want 0", resp["rejected"])
	}
	results := resp["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v, want 3 entries", results)
	}
	first := results[0].(map[string]any)
	if first["applied"].(float64) != 2 || first["tenant"] != "a" {
		t.Errorf("entry 0 = %v, want tenant a applied 2", first)
	}
	// Entry 2 is tenant a's third bin overall: its echoed decision must
	// carry bin index 2, proving the same-tenant entries applied in order.
	last := results[2].(map[string]any)
	dec, ok := last["lastDecision"].(map[string]any)
	if !ok {
		t.Fatalf("entry 2 missing lastDecision: %v", last)
	}
	if dec["bin"].(float64) != 2 {
		t.Errorf("entry 2 decision bin = %v, want 2", dec["bin"])
	}
	if bins := tenantBins(t, h, "a"); bins != 3 {
		t.Errorf("tenant a bins = %v, want 3", bins)
	}
	if bins := tenantBins(t, h, "b"); bins != 1 {
		t.Errorf("tenant b bins = %v, want 1", bins)
	}

	// An empty counts run is a valid no-op entry.
	resp = doJSON(t, h, http.MethodPost, "/v1/observe:batch",
		`{"entries":[{"tenant":"a","counts":[]}]}`, http.StatusOK)
	if resp["applied"].(float64) != 0 {
		t.Errorf("no-op applied = %v, want 0", resp["applied"])
	}
}

// TestServerObserveBatchValidation pins the all-or-nothing contract: a
// malformed request 400s before any bin of any entry is applied.
func TestServerObserveBatchValidation(t *testing.T) {
	h, _ := testHandler(t)
	createFastTenant(t, h, "a")

	doJSON(t, h, http.MethodPost, "/v1/observe:batch", `{broken`, http.StatusBadRequest)
	doJSON(t, h, http.MethodPost, "/v1/observe:batch", `{"entries":[]}`, http.StatusBadRequest)
	// Malformed bins anywhere in the batch poison the whole call, even
	// when earlier entries are valid.
	for _, body := range []string{
		`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"a","counts":[-1]}]}`,
		`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"a","counts":[1e15]}]}`,
		`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"bad id","counts":[100]}]}`,
		`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"","counts":[100]}]}`,
	} {
		doJSON(t, h, http.MethodPost, "/v1/observe:batch", body, http.StatusBadRequest)
	}
	if bins := tenantBins(t, h, "a"); bins != 0 {
		t.Errorf("tenant a bins = %v after rejected batches, want 0", bins)
	}

	// Width caps: one entry over the per-batch entry limit.
	var sb strings.Builder
	sb.WriteString(`{"entries":[`)
	for i := 0; i <= maxBatchEntries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"tenant":"a","counts":[]}`)
	}
	sb.WriteString(`]}`)
	doJSON(t, h, http.MethodPost, "/v1/observe:batch", sb.String(), http.StatusBadRequest)

	req := httptest.NewRequest(http.MethodGet, "/v1/observe:batch", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/observe:batch = %d, want 405", w.Code)
	}
}

// TestServerObserveBatchUnknownTenantMidBatch pins the partial-success
// contract: an unknown tenant in the middle of the batch fails only its
// own entry; the surrounding entries' bins stand and the call stays 200.
func TestServerObserveBatchUnknownTenantMidBatch(t *testing.T) {
	h, _ := testHandler(t)
	createFastTenant(t, h, "a")

	resp := doJSON(t, h, http.MethodPost, "/v1/observe:batch",
		`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"ghost","counts":[100]},{"tenant":"a","counts":[100]}]}`,
		http.StatusOK)
	if resp["applied"].(float64) != 2 {
		t.Errorf("applied = %v, want 2", resp["applied"])
	}
	results := resp["results"].([]any)
	ghost := results[1].(map[string]any)
	if msg, _ := ghost["error"].(string); !strings.Contains(msg, "not found") {
		t.Errorf("ghost entry error = %q, want a not-found message", msg)
	}
	if ghost["applied"].(float64) != 0 {
		t.Errorf("ghost applied = %v, want 0", ghost["applied"])
	}
	for _, i := range []int{0, 2} {
		if msg, _ := results[i].(map[string]any)["error"].(string); msg != "" {
			t.Errorf("entry %d unexpectedly errored: %q", i, msg)
		}
	}
	if bins := tenantBins(t, h, "a"); bins != 2 {
		t.Errorf("tenant a bins = %v, want 2", bins)
	}
}

// TestServerObserveBatchQueueFull pins the backpressure contract: when
// the fleet reports full shard queues, the endpoint answers 429 with
// Retry-After and per-entry errors, so clients know exactly which
// entries to resend. The fleet call is stubbed — deterministically
// wedging a real shard queue through HTTP would race the drain.
func TestServerObserveBatchQueueFull(t *testing.T) {
	f := hierctl.NewFleet(hierctl.FleetConfig{Shards: 1})
	t.Cleanup(f.Close)
	sv := newServer(f, 0)
	sv.batch = func(entries []hierctl.BatchEntry) ([]hierctl.BatchResult, error) {
		out := make([]hierctl.BatchResult, len(entries))
		for i, e := range entries {
			out[i] = hierctl.BatchResult{Tenant: e.Tenant, Err: hierctl.ErrFleetQueueFull}
		}
		return out, nil
	}
	h := sv.routes()

	req := httptest.NewRequest(http.MethodPost, "/v1/observe:batch",
		strings.NewReader(`{"entries":[{"tenant":"a","counts":[100]},{"tenant":"b","counts":[100]}]}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	body := w.Body.String()
	if !strings.Contains(body, `"rejected":2`) || !strings.Contains(body, "queue full") {
		t.Errorf("429 body missing per-entry rejections: %s", body)
	}
}

// TestServerBatchAndJournalMetrics verifies the new series surface on
// /metrics: batch shape histograms, the queue-reject counter, per-shard
// queue depths, and — when a journal is attached — its size counters.
func TestServerBatchAndJournalMetrics(t *testing.T) {
	f := hierctl.NewFleet(hierctl.FleetConfig{Shards: 2})
	t.Cleanup(f.Close)
	sv := newServer(f, 0)
	jnl, err := hierctl.OpenFleetJournal(f, filepath.Join(t.TempDir(), "fleet.log"), hierctl.FleetJournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	sv.journal = jnl
	h := sv.routes()

	createFastTenant(t, h, "m")
	doJSON(t, h, http.MethodPost, "/v1/observe:batch",
		`{"entries":[{"tenant":"m","counts":[250,250]}]}`, http.StatusOK)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE hpmserve_batch_entries histogram",
		"hpmserve_batch_entries_count 1",
		"hpmserve_batch_bins_sum 2",
		"hpmserve_queue_rejects_total 0",
		`hpmserve_shard_queue_depth{shard="0"}`,
		`hpmserve_shard_queue_depth{shard="1"}`,
		"# TYPE hpmserve_journal_base_bytes gauge",
		"hpmserve_journal_compactions_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Base bytes must reflect the opened journal's compacted snapshot.
	if strings.Contains(body, "hpmserve_journal_base_bytes 0\n") {
		t.Error("journal base bytes = 0, want the compacted snapshot size")
	}
}

// TestRunJournalPersistence drives the real daemon loop in journal mode:
// boot, ingest over the batch endpoint, shut down (flushing the
// journal), and reboot recovering the fleet from the log.
func TestRunJournalPersistence(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "fleet.log")
	start := func(ctx context.Context, out *syncBuffer) chan error {
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shards", "2", "-journal", logPath}, out)
		}()
		return errc
	}
	waitAddr := func(out *syncBuffer) string {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := out.String(); strings.Contains(s, "listening on ") {
				line := s[strings.Index(s, "listening on ")+len("listening on "):]
				return strings.Fields(line)[0]
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("daemon never reported its address; output: %q", out.String())
		return ""
	}

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := start(ctx, out)
	base := "http://" + waitAddr(out)

	resp, err := http.Post(base+"/v1/tenants", "application/json",
		strings.NewReader(`{"id":"web","moduleSize":2,"fast":true,"binSeconds":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create tenant = %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/observe:batch", "application/json",
		strings.NewReader(`{"entries":[{"tenant":"web","counts":[500,600]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch observe = %d", resp.StatusCode)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "journal flushed") {
		t.Fatalf("no shutdown journal flush; output: %q", out.String())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	out2 := &syncBuffer{}
	errc2 := start(ctx2, out2)
	addr2 := waitAddr(out2)
	if !strings.Contains(out2.String(), "1 tenants recovered") {
		t.Errorf("recovery not reported; output: %q", out2.String())
	}
	resp, err = http.Get("http://" + addr2 + "/v1/tenants/web/state")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"bins":2`) {
		t.Fatalf("recovered state = %d %s", resp.StatusCode, body)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("run (second boot): %v", err)
	}
}

func TestRunJournalFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-journal-interval", "5s"}, io.Discard); err == nil {
		t.Error("journal interval without journal path: want error")
	}
	if err := run(ctx, []string{"-journal-interval", "-5s", "-journal", "x"}, io.Discard); err == nil {
		t.Error("negative journal interval: want error")
	}
	if err := run(ctx, []string{"-snapshot", "a", "-journal", "b"}, io.Discard); err == nil {
		t.Error("snapshot and journal together: want error")
	}
}
