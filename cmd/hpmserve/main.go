// Command hpmserve is the online control plane daemon: it hosts many
// tenant clusters — each a full hierarchical-LLC controller with its own
// plant, forecasters, and learned state — sharded across worker
// goroutines, and drives them from live observations over an HTTP/JSON
// API instead of batch trace replays.
//
// Usage:
//
//	hpmserve -addr :8700
//	hpmserve -addr :8700 -snapshot fleet.snap -snapshot-interval 5m
//	hpmserve -addr :8700 -journal fleet.log -journal-interval 30s
//
// Then:
//
//	curl -X POST localhost:8700/v1/tenants \
//	     -d '{"id":"web","moduleSize":4,"fast":true,"binSeconds":30}'
//	curl -X POST localhost:8700/v1/tenants/web/observe -d '{"count":900}'
//	curl localhost:8700/v1/tenants/web/state
//	curl localhost:8700/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish, a final snapshot is written (when -snapshot is set) or the
// journal is flushed (when -journal is set), and the fleet's shard
// workers stop.
//
// -snapshot rewrites the full fleet state each cadence; -journal keeps
// an incremental log — one base snapshot plus deltas for what changed
// since, compacted automatically — so large fleets persist at a cost
// proportional to new observations, and a crash mid-append recovers to
// the last durable write.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hierctl"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hpmserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8700", "HTTP listen address")
	shards := fs.Int("shards", 0, "worker shards hosting tenants (0 = one per CPU)")
	snapshot := fs.String("snapshot", "", "snapshot file: restored on start when present, written on shutdown and every -snapshot-interval")
	interval := fs.Duration("snapshot-interval", 0, "periodic snapshot cadence (0 = only on shutdown; needs -snapshot)")
	journal := fs.String("journal", "", "incremental snapshot journal: recovered on start when present, appended on shutdown and every -journal-interval (mutually exclusive with -snapshot)")
	journalInterval := fs.Duration("journal-interval", 0, "periodic journal append cadence (0 = only on shutdown; needs -journal)")
	telemetryRecords := fs.Int("telemetry-records", 4096, "flight-recorder ring size per tenant: decisions retained for /v1/tenants/{id}/telemetry and the per-level /metrics histograms (0 disables recording)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = profiling off; keep it private)")
	journalVerify := fs.String("journal-verify", "", "verify the snapshot/journal log at this path read-only and exit: prints a frame/tenant report, reports a torn tail (recoverable) with exit 0, exits non-zero on corruption")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *journalVerify != "" {
		return verifyJournal(*journalVerify, stdout)
	}
	if *interval < 0 {
		return fmt.Errorf("negative snapshot interval %v", *interval)
	}
	if *interval > 0 && *snapshot == "" {
		return fmt.Errorf("-snapshot-interval needs -snapshot")
	}
	if *journalInterval < 0 {
		return fmt.Errorf("negative journal interval %v", *journalInterval)
	}
	if *journalInterval > 0 && *journal == "" {
		return fmt.Errorf("-journal-interval needs -journal")
	}
	if *snapshot != "" && *journal != "" {
		return fmt.Errorf("-snapshot and -journal are mutually exclusive; pick one persistence mode")
	}
	if *telemetryRecords < 0 {
		return fmt.Errorf("negative -telemetry-records %d", *telemetryRecords)
	}

	f := hierctl.NewFleet(hierctl.FleetConfig{Shards: *shards})
	defer f.Close()
	if *snapshot != "" {
		if err := restoreSnapshot(f, *snapshot, stdout); err != nil {
			return err
		}
	}
	var jnl *hierctl.FleetJournal
	if *journal != "" {
		j, err := hierctl.OpenFleetJournal(f, *journal, hierctl.FleetJournalConfig{})
		if err != nil {
			return err
		}
		jnl = j
		defer jnl.Close()
		fmt.Fprintf(stdout, "hpmserve journal %s (%d tenants recovered)\n", *journal, f.Stats().Tenants)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sv := newServer(f, *telemetryRecords)
	sv.journal = jnl
	// Recovery (snapshot restore / journal replay) is done: the daemon can
	// serve. /readyz flips back to 503 the moment shutdown starts.
	sv.ready.Store(true)
	// Timeouts bound what one slow or stalled client can hold: a header
	// must arrive promptly, a whole request body within ReadTimeout (ample
	// for the bounded 8 MiB batch bodies), and idle keep-alive connections
	// are reaped. No WriteTimeout: /metrics and telemetry responses scale
	// with fleet size and a hard write deadline would truncate them.
	srv := &http.Server{
		Handler:           sv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	fmt.Fprintf(stdout, "hpmserve listening on %s (%d shards, %d tenants)\n",
		ln.Addr(), f.Stats().Shards, f.Stats().Tenants)

	// The pprof endpoints live on their own mux and listener: the API mux
	// never exposes them, so an operator can firewall the debug port
	// separately from the service port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// ReadHeaderTimeout only: pprof profile/trace requests stream for
		// their ?seconds= duration, so request-body/write deadlines would
		// cut live profiles short.
		debugSrv = &http.Server{
			Handler:           debugMux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		fmt.Fprintf(stdout, "hpmserve pprof on %s/debug/pprof/\n", dln.Addr())
		go func() { _ = debugSrv.Serve(dln) }()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// One periodic persister at most: full snapshots or journal appends,
	// per the mutually exclusive flags.
	snapDone := make(chan struct{})
	close(snapDone)
	persist := func() {}
	switch {
	case *interval > 0:
		persist = func() {
			if err := writeSnapshot(f, *snapshot); err != nil {
				fmt.Fprintf(stdout, "hpmserve: periodic snapshot: %v\n", err)
			}
		}
	case *journalInterval > 0:
		persist = func() {
			if err := jnl.Append(); err != nil {
				fmt.Fprintf(stdout, "hpmserve: periodic journal append: %v\n", err)
			}
		}
	}
	if cadence := max(*interval, *journalInterval); cadence > 0 {
		snapDone = make(chan struct{})
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(cadence)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					persist()
				}
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "hpmserve shutting down")
	// Fail readiness first so load balancers drain before Shutdown starts
	// refusing new connections.
	sv.ready.Store(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	// Join the periodic persister before the final write so a stale
	// in-flight snapshot or append can never overwrite the shutdown state.
	<-snapDone
	if *snapshot != "" {
		if err := writeSnapshot(f, *snapshot); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hpmserve snapshot written to %s\n", *snapshot)
	}
	if jnl != nil {
		if err := jnl.Append(); err != nil {
			return err
		}
		if err := jnl.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hpmserve journal flushed to %s\n", *journal)
	}
	return nil
}

// verifyJournal runs the read-only integrity scan behind -journal-verify.
// A torn tail is recoverable crash damage (reported, exit 0); corruption
// errors out, which main turns into a non-zero exit.
func verifyJournal(path string, stdout io.Writer) error {
	rep, err := hierctl.VerifyFleetJournal(path)
	if rep != nil {
		fmt.Fprintf(stdout, "hpmserve journal %s: %d frames (%d base, %d delta, %d remove), %d tenants, %d observations, %d quarantined\n",
			path, rep.Frames, rep.BaseFrames, rep.DeltaFrames, rep.RemoveFrames, rep.Tenants, rep.Observations, rep.Quarantined)
		if rep.TornTail {
			fmt.Fprintln(stdout, "hpmserve journal: torn final frame (crash mid-append); recovery will restore up to the last durable frame")
		}
	}
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fmt.Fprintln(stdout, "hpmserve journal: ok")
	return nil
}

// restoreSnapshot loads a prior snapshot when the file exists; a missing
// file is a clean first start.
func restoreSnapshot(f *hierctl.Fleet, path string, stdout io.Writer) error {
	file, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.Restore(file); err != nil {
		return fmt.Errorf("restore %s: %w", path, err)
	}
	fmt.Fprintf(stdout, "hpmserve restored %d tenants from %s\n", f.Stats().Tenants, path)
	return nil
}

// writeSnapshot writes via a temp file and rename so a crash never leaves
// a truncated snapshot behind.
func writeSnapshot(f *hierctl.Fleet, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
