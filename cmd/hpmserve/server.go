package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hierctl"
	"hierctl/internal/metrics"
	"hierctl/internal/obs"
)

// server wires the fleet to the HTTP/JSON API:
//
//	POST   /v1/tenants                create a tenant hierarchy
//	GET    /v1/tenants                list tenant states
//	POST   /v1/observe:batch          feed many bins across many tenants
//	POST   /v1/tenants/{id}/observe   feed one arrival bin, get decisions
//	GET    /v1/tenants/{id}/state     progress and last decision
//	GET    /v1/tenants/{id}/telemetry recent flight-recorder window
//	DELETE /v1/tenants/{id}           finish the tenant, return its record
//	GET    /metrics                   Prometheus text format
//	GET    /healthz                   liveness probe
type server struct {
	fleet *hierctl.Fleet
	start time.Time
	// journal, when set, is the incremental snapshot journal whose size
	// and compaction counters surface on /metrics.
	journal *hierctl.FleetJournal
	// batch performs the fan-out for /v1/observe:batch; defaults to the
	// fleet's ObserveBatch, overridable so tests can force deterministic
	// queue-full responses.
	batch func([]hierctl.BatchEntry) ([]hierctl.BatchResult, error)
	// telemetryRecords sizes each new tenant's flight recorder (0 turns
	// recording off and empties the telemetry endpoint and the per-level
	// decision histograms).
	telemetryRecords int
	// ready gates /readyz: false until startup recovery finished and again
	// once shutdown begins, so load balancers stop routing before the
	// listener closes. /healthz stays a pure liveness probe.
	ready atomic.Bool

	reg *metrics.Registry
	// Fleet-wide series, set from Fleet.Stats at scrape time.
	tenants, shards, uptime            metrics.Gauge
	observations, ticks, decideSeconds metrics.Counter
	snapshots, restores                metrics.Counter
	queueRejects                       metrics.Counter
	// Per-shard ingest backlog, sampled at scrape time.
	shardQueueDepth *metrics.GaugeVec
	// Batch ingest shape, observed per /v1/observe:batch call.
	batchEntries, batchBins metrics.FixedHistogram
	// Journal size/compaction series; stay zero when no journal runs.
	journalBase, journalTail metrics.Gauge
	journalCompactions       metrics.Counter
	// Fault-containment series: HTTP handler panics caught by the recovery
	// middleware, tenant panics recovered on the shards, and the current
	// quarantine census.
	handlerPanics      metrics.Counter
	tenantPanics       metrics.Counter
	quarantinedTenants metrics.Gauge
	// Per-tenant progress, rebuilt from Fleet.States at scrape time so
	// closed tenants' series disappear.
	tenantBins        *metrics.CounterVec
	tenantOperational *metrics.GaugeVec
	// Cumulative per-tenant series fed by the handlers/scrape drain;
	// deleted explicitly when a tenant closes.
	observeLatency *metrics.HistogramVec
	qosViolations  *metrics.CounterVec
	degradedTicks  *metrics.CounterVec
	staleObs       *metrics.CounterVec
	// Per-level decision telemetry folded in from the flight recorders.
	levelDecide   *metrics.HistogramVec
	levelExplored *metrics.HistogramVec

	// cursors tracks, per tenant, how far the scrape-time drain has read
	// each flight recorder (guarded by mu; scrapes may race tenant
	// deletion).
	mu      sync.Mutex
	cursors map[string]uint64
}

func newServer(f *hierctl.Fleet, telemetryRecords int) *server {
	s := &server{
		fleet:            f,
		start:            time.Now(),
		telemetryRecords: telemetryRecords,
		reg:              metrics.NewRegistry(),
		cursors:          map[string]uint64{},
	}
	// Registration only fails on malformed names/labels, which would be a
	// programming error here — the must helpers keep wiring linear.
	mustCounter := func(name, help string, labels ...string) *metrics.CounterVec {
		c, err := s.reg.Counter(name, help, labels...)
		if err != nil {
			panic(err)
		}
		return c
	}
	mustGauge := func(name, help string, labels ...string) *metrics.GaugeVec {
		g, err := s.reg.Gauge(name, help, labels...)
		if err != nil {
			panic(err)
		}
		return g
	}
	mustHistogram := func(name, help string, bounds []float64, labels ...string) *metrics.HistogramVec {
		h, err := s.reg.Histogram(name, help, bounds, labels...)
		if err != nil {
			panic(err)
		}
		return h
	}
	s.tenants = mustGauge("hpmserve_tenants", "Active tenant hierarchies.").With()
	s.shards = mustGauge("hpmserve_shards", "Worker shards hosting tenants.").With()
	s.uptime = mustGauge("hpmserve_uptime_seconds", "Seconds since the daemon started.").With()
	s.observations = mustCounter("hpmserve_observations_total", "Observation bins ingested across tenants.").With()
	s.ticks = mustCounter("hpmserve_ticks_total", "T_L0 control periods stepped across tenants.").With()
	s.decideSeconds = mustCounter("hpmserve_decide_seconds_total", "Wall-clock seconds spent stepping tenants.").With()
	s.snapshots = mustCounter("hpmserve_snapshots_total", "Fleet snapshots written.").With()
	s.restores = mustCounter("hpmserve_restores_total", "Fleet snapshots restored.").With()
	s.queueRejects = mustCounter("hpmserve_queue_rejects_total",
		"Batch entries rejected because a shard's ingest queue was full.").With()
	s.shardQueueDepth = mustGauge("hpmserve_shard_queue_depth",
		"Jobs waiting in each shard's ingest queue at scrape time.", "shard")
	s.batchEntries = mustHistogram("hpmserve_batch_entries",
		"Tenant entries per /v1/observe:batch call.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096}).With()
	s.batchBins = mustHistogram("hpmserve_batch_bins",
		"Observation bins per /v1/observe:batch call.",
		[]float64{1, 8, 64, 512, 4096, 32768}).With()
	s.journalBase = mustGauge("hpmserve_journal_base_bytes",
		"Size of the journal's last full snapshot (0 when no journal runs).").With()
	s.journalTail = mustGauge("hpmserve_journal_tail_bytes",
		"Delta bytes appended to the journal since its last compaction.").With()
	s.journalCompactions = mustCounter("hpmserve_journal_compactions_total",
		"Full-snapshot rewrites of the journal.").With()
	s.handlerPanics = mustCounter("hpmserve_panics_total",
		"HTTP handler panics caught by the recovery middleware (each answered 500).").With()
	s.tenantPanics = mustCounter("hpmserve_tenant_panics_total",
		"Tenant controller panics recovered on the fleet's shards.").With()
	s.quarantinedTenants = mustGauge("hpmserve_quarantined_tenants",
		"Registered tenants currently quarantined after a panic.").With()
	s.batch = f.ObserveBatch
	s.tenantBins = mustCounter("hpmserve_tenant_bins", "Observation bins ingested per tenant.", "tenant")
	s.tenantOperational = mustGauge("hpmserve_tenant_operational", "Operational computers per tenant.", "tenant")
	s.observeLatency = mustHistogram("hpmserve_observe_seconds",
		"Wall-clock latency of /observe calls (decode + shard step) per tenant.",
		[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10}, "tenant")
	s.qosViolations = mustCounter("hpmserve_qos_violations_total",
		"Control periods whose interval mean response exceeded the target, per tenant.", "tenant")
	s.degradedTicks = mustCounter("hpmserve_degraded_ticks_total",
		"Control periods decided through the deterministic fallback (decision budget exhausted or recovered controller panic), per tenant.", "tenant")
	s.staleObs = mustCounter("hpmserve_stale_observations_total",
		"Module observations held at the last good value by the input sanitizer, per tenant.", "tenant")
	s.levelDecide = mustHistogram("hpmserve_level_decide_seconds",
		"Controller decide latency from the flight recorders, per hierarchy level.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}, "level")
	s.levelExplored = mustHistogram("hpmserve_level_explored",
		"States explored per decision from the flight recorders, per hierarchy level.",
		[]float64{1, 10, 100, 1e3, 1e4, 1e5}, "level")
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/tenants/", s.handleTenant)
	mux.HandleFunc("/v1/observe:batch", s.handleObserveBatch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panicking handler answers
// 500 (when nothing was written yet) instead of killing the connection
// with an empty reply, and the daemon keeps serving. The counter makes
// the failure visible to scrapes even when the client swallowed the 500.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.handlerPanics.Inc()
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": fmt.Sprintf("internal error: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// createReq is the tenant-creation payload. Cluster shapes mirror the
// paper's presets: modules > 1 builds the §5.2 heterogeneous cluster of
// that many 4-computer modules; otherwise a single §4.3-style module of
// moduleSize computers.
type createReq struct {
	ID         string  `json:"id"`
	Modules    int     `json:"modules"`
	ModuleSize int     `json:"moduleSize"`
	Seed       int64   `json:"seed"`
	BinSeconds float64 `json:"binSeconds"`
	// Fast coarsens the offline learning grids — the same knob the CLIs
	// expose — so tenants come up in well under a second.
	Fast        bool      `json:"fast"`
	Calibration []float64 `json:"calibration"`
	// Scenario seeds the tenant from a registered workload scenario (see
	// hpmgen -list): the tenant adopts the scenario's service-time mix and
	// failure plan, its bin width is forced to the scenario trace's, the
	// Kalman calibration defaults to the trace prefix, and the first
	// ScenarioBins bins are fed through the hierarchy at creation — a
	// one-call smoke/load test of a fresh tenant.
	Scenario     string `json:"scenario"`
	ScenarioBins int    `json:"scenarioBins"`
}

type observeReq struct {
	Count float64 `json:"count"`
}

// Request-size guards: tenant creation runs the offline learning and an
// observation synthesizes count individual requests, so both must be
// bounded at the API edge or one call could pin or OOM the daemon.
const (
	// standardModuleSize is the paper's module shape: multi-module
	// clusters (modules > 1) are built from 4-computer modules, and it
	// doubles as the moduleSize decode default.
	standardModuleSize = 4

	maxModules     = 64
	maxModuleSize  = 64
	maxBinCount    = 1e6
	maxBinSeconds  = 3600 // one bin = at most 120 T_L0 control periods
	maxCalibration = 1 << 16
	maxBodyBytes   = 1 << 20
	maxIDLen       = 128
	// maxScenarioBins bounds the scenario bins fed synchronously at
	// creation — each bin synthesizes its full request batch, so the cap
	// keeps a create call from pinning the daemon.
	maxScenarioBins = 512

	// Batch ingest bounds: one /v1/observe:batch call may carry many
	// tenants' bins, so it gets a larger body allowance but hard caps on
	// fan-out width and total simulated work.
	maxBatchEntries   = 4096
	maxBatchBins      = 65536
	maxBatchBodyBytes = 8 << 20
)

// validTenantID rejects ids that would be unroutable in the path-based
// API or awkward as metric labels.
func validTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("missing tenant id")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("tenant id longer than %d bytes", maxIDLen)
	}
	for _, r := range id {
		if r == '/' || r <= ' ' || r == 0x7f {
			return fmt.Errorf("tenant id must not contain %q", r)
		}
	}
	return nil
}

type moduleDTO struct {
	Alpha   []bool    `json:"alpha"`
	Gamma   []float64 `json:"gamma"`
	FreqIdx []int     `json:"freqIdx"`
	FreqHz  []float64 `json:"freqHz"`
}

type decisionDTO struct {
	Bin          int         `json:"bin"`
	Time         float64     `json:"time"`
	GammaModules []float64   `json:"gammaModules,omitempty"`
	Modules      []moduleDTO `json:"modules"`
	MeanResponse float64     `json:"meanResponse"`
	Operational  int         `json:"operational"`
}

type stateDTO struct {
	ID           string       `json:"id"`
	Computers    int          `json:"computers"`
	Bins         int          `json:"bins"`
	Steps        int          `json:"steps"`
	SimTime      float64      `json:"simTime"`
	Quarantined  bool         `json:"quarantined,omitempty"`
	LastDecision *decisionDTO `json:"lastDecision,omitempty"`
}

type recordDTO struct {
	Completed     int64   `json:"completed"`
	Dropped       int64   `json:"dropped"`
	Energy        float64 `json:"energy"`
	Switches      int     `json:"switches"`
	MeanResponse  float64 `json:"meanResponse"`
	ResponseP95   float64 `json:"responseP95"`
	ViolationFrac float64 `json:"violationFrac"`
}

func toDecisionDTO(d hierctl.BinDecision) *decisionDTO {
	out := &decisionDTO{
		Bin:          d.Bin,
		Time:         d.Time,
		GammaModules: d.GammaModules,
		Modules:      make([]moduleDTO, len(d.Modules)),
		MeanResponse: d.MeanResponse,
		Operational:  d.Operational,
	}
	for i, m := range d.Modules {
		out.Modules[i] = moduleDTO{Alpha: m.Alpha, Gamma: m.Gamma, FreqIdx: m.FreqIdx, FreqHz: m.FreqHz}
	}
	return out
}

func toStateDTO(st hierctl.TenantState) stateDTO {
	out := stateDTO{
		ID:          st.ID,
		Computers:   st.Computers,
		Bins:        st.Bins,
		Steps:       st.Steps,
		SimTime:     st.SimTime,
		Quarantined: st.Quarantined,
	}
	if st.LastDecision != nil {
		out.LastDecision = toDecisionDTO(*st.LastDecision)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, hierctl.ErrTenantNotFound):
		status = http.StatusNotFound
	case errors.Is(err, hierctl.ErrTenantExists):
		status = http.StatusConflict
	case errors.Is(err, hierctl.ErrFleetClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, hierctl.ErrTenantQuarantined):
		// The tenant exists but refuses stepping until closed: a conflict
		// with its state, not a client mistake or a missing resource.
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleTenants serves the collection: POST create, GET list.
func (s *server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createTenant(w, r)
	case http.MethodGet:
		states := make([]stateDTO, 0)
		for _, st := range s.fleet.States() {
			states = append(states, toStateDTO(st))
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenants": states})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) createTenant(w http.ResponseWriter, r *http.Request) {
	req := createReq{ModuleSize: standardModuleSize, Seed: 1, BinSeconds: 30}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := validTenantID(req.ID); err != nil {
		writeError(w, err)
		return
	}
	// Cluster-shape validation: both bounds matter — oversized requests
	// would pin the daemon in offline learning, and non-positive values
	// must not leak into the cluster constructors. modules is optional
	// (0 = single-module cluster of moduleSize computers); moduleSize
	// only parameterizes that single-module shape, so any non-default
	// value alongside modules > 1 is a conflict, not silently ignored.
	if req.Modules < 0 || req.Modules > maxModules {
		writeError(w, fmt.Errorf("modules %d outside [0, %d]", req.Modules, maxModules))
		return
	}
	if req.ModuleSize < 1 || req.ModuleSize > maxModuleSize {
		writeError(w, fmt.Errorf("moduleSize %d outside [1, %d]", req.ModuleSize, maxModuleSize))
		return
	}
	if req.Modules > 1 && req.ModuleSize != standardModuleSize {
		writeError(w, fmt.Errorf("moduleSize %d conflicts with modules %d: multi-module clusters are built from standard %d-computer modules; omit moduleSize (or leave it %d)", req.ModuleSize, req.Modules, standardModuleSize, standardModuleSize))
		return
	}
	if len(req.Calibration) > maxCalibration {
		writeError(w, fmt.Errorf("calibration longer than %d bins", maxCalibration))
		return
	}
	if !(req.BinSeconds > 0) || req.BinSeconds > maxBinSeconds { // also rejects NaN
		writeError(w, fmt.Errorf("binSeconds %v outside (0, %d]", req.BinSeconds, maxBinSeconds))
		return
	}
	if req.ScenarioBins < 0 || req.ScenarioBins > maxScenarioBins {
		writeError(w, fmt.Errorf("scenarioBins %d outside [0, %d]", req.ScenarioBins, maxScenarioBins))
		return
	}
	if req.Scenario == "" && req.ScenarioBins > 0 {
		writeError(w, fmt.Errorf("scenarioBins %d without a scenario; name one (see hpmgen -list)", req.ScenarioBins))
		return
	}
	var spec hierctl.ClusterSpec
	var err error
	switch {
	case req.Modules > 1:
		spec, err = hierctl.StandardCluster(req.Modules)
	case req.ModuleSize == standardModuleSize:
		spec, err = hierctl.StandardModuleCluster()
	default:
		spec, err = hierctl.ScaledModuleCluster(req.ModuleSize)
	}
	if err != nil {
		writeError(w, err)
		return
	}

	// Scenario seeding: adopt the scenario's store mix and failure plan,
	// force the bin cadence to the trace's, and default the calibration
	// to the trace prefix. Unknown names 400 with the registered list
	// (the lookup error carries it).
	storeCfg := hierctl.DefaultStoreConfig()
	calibration := req.Calibration
	binSeconds := req.BinSeconds
	var failures []hierctl.FailureEvent
	var trace *hierctl.Series
	if req.Scenario != "" {
		sc, err := hierctl.LookupScenario(req.Scenario)
		if err != nil {
			writeError(w, err)
			return
		}
		// Parameterized scenarios (tracefile:<path>) would let any client
		// make the daemon read — and echo parse errors from — arbitrary
		// host files; only parameter-free scenarios are served.
		if sc.NeedsArg {
			writeError(w, fmt.Errorf("scenario %q is not available via the API (recorded traces must be registered server-side)", req.Scenario))
			return
		}
		trace, err = sc.Trace(req.Seed)
		if err != nil {
			writeError(w, err)
			return
		}
		sc.ScaleToCluster(trace, spec.Computers())
		storeCfg = sc.StoreConfig()
		failures = sc.FailurePlan(trace)
		binSeconds = trace.Step
		// Recorded traces can carry any cadence; the API bound applies to
		// them like to explicit binSeconds.
		if !(binSeconds > 0) || binSeconds > maxBinSeconds {
			writeError(w, fmt.Errorf("scenario bin width %v outside (0, %d]", binSeconds, maxBinSeconds))
			return
		}
		if len(calibration) == 0 {
			calibration = trace.Values[:min(trace.Len(), 64)]
		}
	}

	cfg := hierctl.ExperimentOptions{Seed: req.Seed, Fast: req.Fast}.Config()
	// A long-running daemon should not accumulate per-T_L0 frequency
	// series per computer; the decision payloads carry the frequencies.
	cfg.RecordFrequencies = false
	// The fleet's shards provide the cross-tenant parallelism; per-tenant
	// fan-out on top would oversubscribe the scheduler.
	cfg.Parallelism = 1
	learnStart := time.Now()
	if err := s.fleet.CreateTenant(req.ID, hierctl.TenantConfig{
		Spec:             spec,
		Core:             cfg,
		Store:            storeCfg,
		StoreSeed:        req.Seed,
		BinSeconds:       binSeconds,
		Calibration:      calibration,
		Failures:         failures,
		TelemetryRecords: s.telemetryRecords,
	}); err != nil {
		writeError(w, err)
		return
	}
	learnSeconds := time.Since(learnStart).Seconds()

	// Feed the requested scenario prefix through the hierarchy. A feed
	// error after creation is reported but leaves the tenant up with
	// whatever bins it absorbed.
	binsFed := 0
	if trace != nil && req.ScenarioBins > 0 {
		n := min(req.ScenarioBins, trace.Len())
		for i := 0; i < n; i++ {
			if _, err := s.fleet.Observe(req.ID, trace.Values[i]); err != nil {
				writeError(w, fmt.Errorf("seeding bin %d: %w", i, err))
				return
			}
			binsFed++
		}
	}

	resp := map[string]any{
		"id":           req.ID,
		"computers":    spec.Computers(),
		"modules":      len(spec.Modules),
		"binSeconds":   binSeconds,
		"learnSeconds": learnSeconds,
	}
	if req.Scenario != "" {
		resp["scenario"] = req.Scenario
		resp["scenarioBinsFed"] = binsFed
	}
	writeJSON(w, http.StatusCreated, resp)
}

// batchReq is the /v1/observe:batch payload: per-tenant runs of arrival
// bins, applied in entry order (entries naming the same tenant apply
// consecutively in the order given). decisions=true echoes each entry's
// last control decision back — off by default to keep 10k-tenant
// responses small.
type batchReq struct {
	Entries   []batchEntryReq `json:"entries"`
	Decisions bool            `json:"decisions"`
}

type batchEntryReq struct {
	Tenant string    `json:"tenant"`
	Counts []float64 `json:"counts"`
}

type batchEntryResp struct {
	Tenant string `json:"tenant"`
	// Applied counts the entry's bins actually ingested; on a per-entry
	// error it reports how far the entry got before stopping.
	Applied      int          `json:"applied"`
	Error        string       `json:"error,omitempty"`
	LastDecision *decisionDTO `json:"lastDecision,omitempty"`
}

type batchResp struct {
	Applied  int              `json:"applied"`
	Rejected int              `json:"rejected"`
	Results  []batchEntryResp `json:"results"`
}

// handleObserveBatch ingests many bins across many tenants in one
// round-trip. Validation is all-or-nothing: a malformed request (bad id,
// non-finite or oversized count, too many entries/bins) 400s before any
// bin is applied. Per-entry failures after that — an unknown tenant in
// the middle of the batch — surface as entry-level errors in a 200 while
// the other entries' bins stand. A full shard ingest queue turns the
// response into 429 with Retry-After so clients back off and resend the
// rejected entries (per-tenant ordering is preserved: once one entry for
// a tenant is rejected, later entries for it in the same call are too).
func (s *server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req batchReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Entries) == 0 {
		writeError(w, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Entries) > maxBatchEntries {
		writeError(w, fmt.Errorf("%d entries exceed the %d per-batch cap", len(req.Entries), maxBatchEntries))
		return
	}
	totalBins := 0
	for i, e := range req.Entries {
		if err := validTenantID(e.Tenant); err != nil {
			writeError(w, fmt.Errorf("entry %d: %w", i, err))
			return
		}
		totalBins += len(e.Counts)
		for _, c := range e.Counts {
			if !(c >= 0) || c > maxBinCount { // also rejects NaN
				writeError(w, fmt.Errorf("entry %d (%s): count %v outside [0, %g]", i, e.Tenant, c, float64(maxBinCount)))
				return
			}
		}
	}
	if totalBins > maxBatchBins {
		writeError(w, fmt.Errorf("%d bins exceed the %d per-batch cap", totalBins, maxBatchBins))
		return
	}

	entries := make([]hierctl.BatchEntry, len(req.Entries))
	for i, e := range req.Entries {
		entries[i] = hierctl.BatchEntry{Tenant: e.Tenant, Counts: e.Counts}
	}
	results, err := s.batch(entries)
	if err != nil {
		writeError(w, err)
		return
	}
	s.batchEntries.Observe(float64(len(entries)))
	s.batchBins.Observe(float64(totalBins))

	resp := batchResp{Results: make([]batchEntryResp, len(results))}
	status := http.StatusOK
	for i, res := range results {
		out := batchEntryResp{Tenant: res.Tenant, Applied: res.Applied}
		resp.Applied += res.Applied
		switch {
		case res.Err != nil:
			out.Error = res.Err.Error()
			if errors.Is(res.Err, hierctl.ErrFleetQueueFull) {
				resp.Rejected++
				status = http.StatusTooManyRequests
			}
		case req.Decisions && res.LastDecision != nil:
			out.LastDecision = toDecisionDTO(*res.LastDecision)
		}
		resp.Results[i] = out
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// handleTenant serves one tenant: {id}/observe, {id}/state, DELETE {id}.
func (s *server) handleTenant(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/tenants/"), "/")
	id := parts[0]
	if id == "" {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 2 && parts[1] == "observe" && r.Method == http.MethodPost:
		var req observeReq
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("decode request: %w", err))
			return
		}
		if !(req.Count >= 0) || req.Count > maxBinCount { // also rejects NaN
			writeError(w, fmt.Errorf("count %v outside [0, %g]", req.Count, float64(maxBinCount)))
			return
		}
		start := time.Now()
		dec, err := s.fleet.Observe(id, req.Count)
		if err != nil {
			writeError(w, err)
			return
		}
		s.observeLatency.With(id).Observe(time.Since(start).Seconds())
		writeJSON(w, http.StatusOK, toDecisionDTO(dec))
	case len(parts) == 2 && parts[1] == "telemetry" && r.Method == http.MethodGet:
		s.handleTelemetry(w, r, id)
	case len(parts) == 2 && parts[1] == "state" && r.Method == http.MethodGet,
		len(parts) == 1 && r.Method == http.MethodGet:
		st, err := s.fleet.State(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toStateDTO(st))
	case len(parts) == 1 && r.Method == http.MethodDelete:
		// Fold in any last recorded decisions before the ring goes away.
		s.drainTelemetry(id)
		rec, err := s.fleet.CloseTenant(id)
		if err != nil {
			// A quarantined tenant is removed without a drain, so there is
			// no record to report — but its per-tenant series must still go.
			if errors.Is(err, hierctl.ErrTenantQuarantined) {
				s.forgetTenant(id)
			}
			writeError(w, err)
			return
		}
		s.forgetTenant(id)
		writeJSON(w, http.StatusOK, recordDTO{
			Completed:     rec.Completed,
			Dropped:       rec.Dropped,
			Energy:        rec.Energy,
			Switches:      rec.Switches,
			MeanResponse:  rec.MeanResponse(),
			ResponseP95:   rec.ResponseP95,
			ViolationFrac: rec.ViolationFrac,
		})
	default:
		http.NotFound(w, r)
	}
}

// maxTelemetryWindow bounds one telemetry response; the flight recorder
// may retain more, but a single GET never serializes more than this.
const maxTelemetryWindow = 4096

// telemetryDTO is the /v1/tenants/{id}/telemetry payload: the newest
// recorded decisions (oldest first) plus the recorder's write cursor.
// Records use the flight recorder's JSON shape (tick, level, module,
// comp, freqIdx, ...); total only grows, so clients can diff it across
// polls to detect how much they missed.
type telemetryDTO struct {
	Tenant  string                    `json:"tenant"`
	Total   uint64                    `json:"total"`
	Records []hierctl.TelemetryRecord `json:"records"`
}

// handleTelemetry serves the read-only flight-recorder window. ?max=N
// trims the response to the newest N records (default and cap
// maxTelemetryWindow). Tenants running without a recorder return an
// empty window, not an error.
func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request, id string) {
	max := maxTelemetryWindow
	if raw := r.URL.Query().Get("max"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, fmt.Errorf("max %q is not a positive integer", raw))
			return
		}
		if n < max {
			max = n
		}
	}
	recs, total, err := s.fleet.Telemetry(id, max)
	if err != nil {
		writeError(w, err)
		return
	}
	if recs == nil {
		recs = []hierctl.TelemetryRecord{}
	}
	writeJSON(w, http.StatusOK, telemetryDTO{Tenant: id, Total: total, Records: recs})
}

// handleMetrics renders the fleet counters and the flight-recorder
// telemetry in the Prometheus text exposition format (the internal
// registry — no client library). Fleet-wide and per-tenant progress
// series are refreshed from the fleet's authoritative counters at scrape
// time; decision telemetry is drained incrementally from each tenant's
// flight recorder so repeated scrapes fold in only new records.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.fleet.Stats()
	s.tenants.Set(float64(stats.Tenants))
	s.shards.Set(float64(stats.Shards))
	s.uptime.Set(time.Since(s.start).Seconds())
	s.observations.SetTotal(float64(stats.Observations))
	s.ticks.SetTotal(float64(stats.Ticks))
	s.decideSeconds.SetTotal(stats.DecideSeconds)
	s.snapshots.SetTotal(float64(stats.Snapshots))
	s.restores.SetTotal(float64(stats.Restores))
	s.queueRejects.SetTotal(float64(stats.QueueRejects))
	s.tenantPanics.SetTotal(float64(stats.Panics))
	s.quarantinedTenants.Set(float64(stats.Quarantined))
	s.shardQueueDepth.Reset()
	for i, depth := range s.fleet.QueueDepths() {
		s.shardQueueDepth.With(strconv.Itoa(i)).Set(float64(depth))
	}
	if s.journal != nil {
		js := s.journal.Stats()
		s.journalBase.Set(float64(js.BaseBytes))
		s.journalTail.Set(float64(js.TailBytes))
		s.journalCompactions.SetTotal(float64(js.Compactions))
	}

	// Rebuild the per-tenant progress series from scratch: States() is the
	// authority, and a Reset drops series for tenants closed since the
	// last scrape.
	s.tenantBins.Reset()
	s.tenantOperational.Reset()
	for _, st := range s.fleet.States() {
		s.tenantBins.With(st.ID).SetTotal(float64(st.Bins))
		if st.LastDecision != nil {
			s.tenantOperational.With(st.ID).Set(float64(st.LastDecision.Operational))
		}
		s.drainTelemetry(st.ID)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}

// drainTelemetry folds a tenant's flight-recorder records written since
// the last scrape into the per-level and per-tenant series. Detail
// records (per-computer rows under an L1 summary, per-module rows under
// an L2 summary) carry no timing of their own and are skipped; if the
// ring wrapped between scrapes the gap is simply lost, matching the
// recorder's bounded-window contract.
func (s *server) drainTelemetry(id string) {
	// The lock spans the read-drain-advance sequence so concurrent scrapes
	// cannot double-count the same window.
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, next, err := s.fleet.TelemetrySince(id, s.cursors[id])
	if err != nil || next == s.cursors[id] {
		return
	}
	for _, rec := range recs {
		switch rec.Level {
		case obs.LevelTick:
			if rec.QoS {
				s.qosViolations.With(id).Inc()
			}
			if rec.Degraded {
				s.degradedTicks.With(id).Inc()
			}
			if rec.Stale > 0 {
				s.staleObs.With(id).Add(float64(rec.Stale))
			}
			continue
		case obs.LevelL1:
			if rec.Comp != -1 { // per-computer detail row
				continue
			}
		case obs.LevelL2:
			if rec.Module != -1 { // per-module detail row
				continue
			}
		}
		level := rec.Level.String()
		s.levelDecide.With(level).Observe(float64(rec.DecideNs) / 1e9)
		s.levelExplored.With(level).Observe(float64(rec.Explored))
	}
	s.cursors[id] = next
}

// forgetTenant drops the cumulative per-tenant series and the telemetry
// cursor once a tenant is closed (the scrape-time series vanish on their
// own at the next Reset).
func (s *server) forgetTenant(id string) {
	s.mu.Lock()
	delete(s.cursors, id)
	s.mu.Unlock()
	s.observeLatency.Delete(id)
	s.qosViolations.Delete(id)
	s.degradedTicks.Delete(id)
	s.staleObs.Delete(id)
}
