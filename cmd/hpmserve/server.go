package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hierctl"
)

// server wires the fleet to the HTTP/JSON API:
//
//	POST   /v1/tenants              create a tenant hierarchy
//	GET    /v1/tenants              list tenant states
//	POST   /v1/tenants/{id}/observe feed one arrival bin, get decisions
//	GET    /v1/tenants/{id}/state   progress and last decision
//	DELETE /v1/tenants/{id}         finish the tenant, return its record
//	GET    /metrics                 Prometheus text format
//	GET    /healthz                 liveness probe
type server struct {
	fleet *hierctl.Fleet
	start time.Time
}

func newServer(f *hierctl.Fleet) *server {
	return &server{fleet: f, start: time.Now()}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/tenants/", s.handleTenant)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// createReq is the tenant-creation payload. Cluster shapes mirror the
// paper's presets: modules > 1 builds the §5.2 heterogeneous cluster of
// that many 4-computer modules; otherwise a single §4.3-style module of
// moduleSize computers.
type createReq struct {
	ID         string  `json:"id"`
	Modules    int     `json:"modules"`
	ModuleSize int     `json:"moduleSize"`
	Seed       int64   `json:"seed"`
	BinSeconds float64 `json:"binSeconds"`
	// Fast coarsens the offline learning grids — the same knob the CLIs
	// expose — so tenants come up in well under a second.
	Fast        bool      `json:"fast"`
	Calibration []float64 `json:"calibration"`
	// Scenario seeds the tenant from a registered workload scenario (see
	// hpmgen -list): the tenant adopts the scenario's service-time mix and
	// failure plan, its bin width is forced to the scenario trace's, the
	// Kalman calibration defaults to the trace prefix, and the first
	// ScenarioBins bins are fed through the hierarchy at creation — a
	// one-call smoke/load test of a fresh tenant.
	Scenario     string `json:"scenario"`
	ScenarioBins int    `json:"scenarioBins"`
}

type observeReq struct {
	Count float64 `json:"count"`
}

// Request-size guards: tenant creation runs the offline learning and an
// observation synthesizes count individual requests, so both must be
// bounded at the API edge or one call could pin or OOM the daemon.
const (
	// standardModuleSize is the paper's module shape: multi-module
	// clusters (modules > 1) are built from 4-computer modules, and it
	// doubles as the moduleSize decode default.
	standardModuleSize = 4

	maxModules     = 64
	maxModuleSize  = 64
	maxBinCount    = 1e6
	maxBinSeconds  = 3600 // one bin = at most 120 T_L0 control periods
	maxCalibration = 1 << 16
	maxBodyBytes   = 1 << 20
	maxIDLen       = 128
	// maxScenarioBins bounds the scenario bins fed synchronously at
	// creation — each bin synthesizes its full request batch, so the cap
	// keeps a create call from pinning the daemon.
	maxScenarioBins = 512
)

// validTenantID rejects ids that would be unroutable in the path-based
// API or awkward as metric labels.
func validTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("missing tenant id")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("tenant id longer than %d bytes", maxIDLen)
	}
	for _, r := range id {
		if r == '/' || r <= ' ' || r == 0x7f {
			return fmt.Errorf("tenant id must not contain %q", r)
		}
	}
	return nil
}

type moduleDTO struct {
	Alpha   []bool    `json:"alpha"`
	Gamma   []float64 `json:"gamma"`
	FreqIdx []int     `json:"freqIdx"`
	FreqHz  []float64 `json:"freqHz"`
}

type decisionDTO struct {
	Bin          int         `json:"bin"`
	Time         float64     `json:"time"`
	GammaModules []float64   `json:"gammaModules,omitempty"`
	Modules      []moduleDTO `json:"modules"`
	MeanResponse float64     `json:"meanResponse"`
	Operational  int         `json:"operational"`
}

type stateDTO struct {
	ID           string       `json:"id"`
	Computers    int          `json:"computers"`
	Bins         int          `json:"bins"`
	Steps        int          `json:"steps"`
	SimTime      float64      `json:"simTime"`
	LastDecision *decisionDTO `json:"lastDecision,omitempty"`
}

type recordDTO struct {
	Completed     int64   `json:"completed"`
	Dropped       int64   `json:"dropped"`
	Energy        float64 `json:"energy"`
	Switches      int     `json:"switches"`
	MeanResponse  float64 `json:"meanResponse"`
	ResponseP95   float64 `json:"responseP95"`
	ViolationFrac float64 `json:"violationFrac"`
}

func toDecisionDTO(d hierctl.BinDecision) *decisionDTO {
	out := &decisionDTO{
		Bin:          d.Bin,
		Time:         d.Time,
		GammaModules: d.GammaModules,
		Modules:      make([]moduleDTO, len(d.Modules)),
		MeanResponse: d.MeanResponse,
		Operational:  d.Operational,
	}
	for i, m := range d.Modules {
		out.Modules[i] = moduleDTO{Alpha: m.Alpha, Gamma: m.Gamma, FreqIdx: m.FreqIdx, FreqHz: m.FreqHz}
	}
	return out
}

func toStateDTO(st hierctl.TenantState) stateDTO {
	out := stateDTO{
		ID:        st.ID,
		Computers: st.Computers,
		Bins:      st.Bins,
		Steps:     st.Steps,
		SimTime:   st.SimTime,
	}
	if st.LastDecision != nil {
		out.LastDecision = toDecisionDTO(*st.LastDecision)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, hierctl.ErrTenantNotFound):
		status = http.StatusNotFound
	case errors.Is(err, hierctl.ErrTenantExists):
		status = http.StatusConflict
	case errors.Is(err, hierctl.ErrFleetClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleTenants serves the collection: POST create, GET list.
func (s *server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createTenant(w, r)
	case http.MethodGet:
		states := make([]stateDTO, 0)
		for _, st := range s.fleet.States() {
			states = append(states, toStateDTO(st))
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenants": states})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) createTenant(w http.ResponseWriter, r *http.Request) {
	req := createReq{ModuleSize: standardModuleSize, Seed: 1, BinSeconds: 30}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := validTenantID(req.ID); err != nil {
		writeError(w, err)
		return
	}
	// Cluster-shape validation: both bounds matter — oversized requests
	// would pin the daemon in offline learning, and non-positive values
	// must not leak into the cluster constructors. modules is optional
	// (0 = single-module cluster of moduleSize computers); moduleSize
	// only parameterizes that single-module shape, so any non-default
	// value alongside modules > 1 is a conflict, not silently ignored.
	if req.Modules < 0 || req.Modules > maxModules {
		writeError(w, fmt.Errorf("modules %d outside [0, %d]", req.Modules, maxModules))
		return
	}
	if req.ModuleSize < 1 || req.ModuleSize > maxModuleSize {
		writeError(w, fmt.Errorf("moduleSize %d outside [1, %d]", req.ModuleSize, maxModuleSize))
		return
	}
	if req.Modules > 1 && req.ModuleSize != standardModuleSize {
		writeError(w, fmt.Errorf("moduleSize %d conflicts with modules %d: multi-module clusters are built from standard %d-computer modules; omit moduleSize (or leave it %d)", req.ModuleSize, req.Modules, standardModuleSize, standardModuleSize))
		return
	}
	if len(req.Calibration) > maxCalibration {
		writeError(w, fmt.Errorf("calibration longer than %d bins", maxCalibration))
		return
	}
	if !(req.BinSeconds > 0) || req.BinSeconds > maxBinSeconds { // also rejects NaN
		writeError(w, fmt.Errorf("binSeconds %v outside (0, %d]", req.BinSeconds, maxBinSeconds))
		return
	}
	if req.ScenarioBins < 0 || req.ScenarioBins > maxScenarioBins {
		writeError(w, fmt.Errorf("scenarioBins %d outside [0, %d]", req.ScenarioBins, maxScenarioBins))
		return
	}
	if req.Scenario == "" && req.ScenarioBins > 0 {
		writeError(w, fmt.Errorf("scenarioBins %d without a scenario; name one (see hpmgen -list)", req.ScenarioBins))
		return
	}
	var spec hierctl.ClusterSpec
	var err error
	switch {
	case req.Modules > 1:
		spec, err = hierctl.StandardCluster(req.Modules)
	case req.ModuleSize == standardModuleSize:
		spec, err = hierctl.StandardModuleCluster()
	default:
		spec, err = hierctl.ScaledModuleCluster(req.ModuleSize)
	}
	if err != nil {
		writeError(w, err)
		return
	}

	// Scenario seeding: adopt the scenario's store mix and failure plan,
	// force the bin cadence to the trace's, and default the calibration
	// to the trace prefix. Unknown names 400 with the registered list
	// (the lookup error carries it).
	storeCfg := hierctl.DefaultStoreConfig()
	calibration := req.Calibration
	binSeconds := req.BinSeconds
	var failures []hierctl.FailureEvent
	var trace *hierctl.Series
	if req.Scenario != "" {
		sc, err := hierctl.LookupScenario(req.Scenario)
		if err != nil {
			writeError(w, err)
			return
		}
		// Parameterized scenarios (tracefile:<path>) would let any client
		// make the daemon read — and echo parse errors from — arbitrary
		// host files; only parameter-free scenarios are served.
		if sc.NeedsArg {
			writeError(w, fmt.Errorf("scenario %q is not available via the API (recorded traces must be registered server-side)", req.Scenario))
			return
		}
		trace, err = sc.Trace(req.Seed)
		if err != nil {
			writeError(w, err)
			return
		}
		sc.ScaleToCluster(trace, spec.Computers())
		storeCfg = sc.StoreConfig()
		failures = sc.FailurePlan(trace)
		binSeconds = trace.Step
		// Recorded traces can carry any cadence; the API bound applies to
		// them like to explicit binSeconds.
		if !(binSeconds > 0) || binSeconds > maxBinSeconds {
			writeError(w, fmt.Errorf("scenario bin width %v outside (0, %d]", binSeconds, maxBinSeconds))
			return
		}
		if len(calibration) == 0 {
			calibration = trace.Values[:min(trace.Len(), 64)]
		}
	}

	cfg := hierctl.ExperimentOptions{Seed: req.Seed, Fast: req.Fast}.Config()
	// A long-running daemon should not accumulate per-T_L0 frequency
	// series per computer; the decision payloads carry the frequencies.
	cfg.RecordFrequencies = false
	// The fleet's shards provide the cross-tenant parallelism; per-tenant
	// fan-out on top would oversubscribe the scheduler.
	cfg.Parallelism = 1
	learnStart := time.Now()
	if err := s.fleet.CreateTenant(req.ID, hierctl.TenantConfig{
		Spec:        spec,
		Core:        cfg,
		Store:       storeCfg,
		StoreSeed:   req.Seed,
		BinSeconds:  binSeconds,
		Calibration: calibration,
		Failures:    failures,
	}); err != nil {
		writeError(w, err)
		return
	}
	learnSeconds := time.Since(learnStart).Seconds()

	// Feed the requested scenario prefix through the hierarchy. A feed
	// error after creation is reported but leaves the tenant up with
	// whatever bins it absorbed.
	binsFed := 0
	if trace != nil && req.ScenarioBins > 0 {
		n := min(req.ScenarioBins, trace.Len())
		for i := 0; i < n; i++ {
			if _, err := s.fleet.Observe(req.ID, trace.Values[i]); err != nil {
				writeError(w, fmt.Errorf("seeding bin %d: %w", i, err))
				return
			}
			binsFed++
		}
	}

	resp := map[string]any{
		"id":           req.ID,
		"computers":    spec.Computers(),
		"modules":      len(spec.Modules),
		"binSeconds":   binSeconds,
		"learnSeconds": learnSeconds,
	}
	if req.Scenario != "" {
		resp["scenario"] = req.Scenario
		resp["scenarioBinsFed"] = binsFed
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handleTenant serves one tenant: {id}/observe, {id}/state, DELETE {id}.
func (s *server) handleTenant(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/tenants/"), "/")
	id := parts[0]
	if id == "" {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 2 && parts[1] == "observe" && r.Method == http.MethodPost:
		var req observeReq
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("decode request: %w", err))
			return
		}
		if !(req.Count >= 0) || req.Count > maxBinCount { // also rejects NaN
			writeError(w, fmt.Errorf("count %v outside [0, %g]", req.Count, float64(maxBinCount)))
			return
		}
		dec, err := s.fleet.Observe(id, req.Count)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toDecisionDTO(dec))
	case len(parts) == 2 && parts[1] == "state" && r.Method == http.MethodGet,
		len(parts) == 1 && r.Method == http.MethodGet:
		st, err := s.fleet.State(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toStateDTO(st))
	case len(parts) == 1 && r.Method == http.MethodDelete:
		rec, err := s.fleet.CloseTenant(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, recordDTO{
			Completed:     rec.Completed,
			Dropped:       rec.Dropped,
			Energy:        rec.Energy,
			Switches:      rec.Switches,
			MeanResponse:  rec.MeanResponse(),
			ResponseP95:   rec.ResponseP95,
			ViolationFrac: rec.ViolationFrac,
		})
	default:
		http.NotFound(w, r)
	}
}

// handleMetrics renders the fleet counters in the Prometheus text
// exposition format (no client library needed).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.fleet.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("hpmserve_tenants", "Active tenant hierarchies.", float64(stats.Tenants))
	gauge("hpmserve_shards", "Worker shards hosting tenants.", float64(stats.Shards))
	gauge("hpmserve_uptime_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	counter("hpmserve_observations_total", "Observation bins ingested across tenants.", float64(stats.Observations))
	counter("hpmserve_ticks_total", "T_L0 control periods stepped across tenants.", float64(stats.Ticks))
	counter("hpmserve_decide_seconds_total", "Wall-clock seconds spent stepping tenants.", stats.DecideSeconds)
	counter("hpmserve_snapshots_total", "Fleet snapshots written.", float64(stats.Snapshots))
	counter("hpmserve_restores_total", "Fleet snapshots restored.", float64(stats.Restores))

	// Per-tenant progress, labelled; States() preserves the sorted id
	// order so scrapes are stable.
	var binRows, opRows strings.Builder
	for _, st := range s.fleet.States() {
		fmt.Fprintf(&binRows, "hpmserve_tenant_bins{tenant=%q} %d\n", st.ID, st.Bins)
		if st.LastDecision != nil {
			fmt.Fprintf(&opRows, "hpmserve_tenant_operational{tenant=%q} %d\n", st.ID, st.LastDecision.Operational)
		}
	}
	if binRows.Len() > 0 {
		fmt.Fprintf(&b, "# HELP hpmserve_tenant_bins Observation bins ingested per tenant.\n# TYPE hpmserve_tenant_bins counter\n%s", binRows.String())
	}
	if opRows.Len() > 0 {
		fmt.Fprintf(&b, "# HELP hpmserve_tenant_operational Operational computers per tenant.\n# TYPE hpmserve_tenant_operational gauge\n%s", opRows.String())
	}
	_, _ = w.Write([]byte(b.String()))
}
