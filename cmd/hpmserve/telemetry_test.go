package main

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hierctl"
	"hierctl/internal/metrics"
)

func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	return w.Body.String()
}

// TestServerTelemetryEndpoint drives GET /v1/tenants/{id}/telemetry: the
// recent flight-recorder window comes back as JSON, ?max bounds it, and
// bad parameters or unknown tenants produce the usual error statuses.
func TestServerTelemetryEndpoint(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"tel","moduleSize":2,"fast":true}`, http.StatusCreated)
	for i := 0; i < 3; i++ {
		doJSON(t, h, http.MethodPost, "/v1/tenants/tel/observe", `{"count":400}`, http.StatusOK)
	}

	resp := doJSON(t, h, http.MethodGet, "/v1/tenants/tel/telemetry", "", http.StatusOK)
	if resp["tenant"] != "tel" {
		t.Errorf("tenant = %v", resp["tenant"])
	}
	total := resp["total"].(float64)
	records, ok := resp["records"].([]any)
	if !ok || len(records) == 0 {
		t.Fatalf("records = %v, want a non-empty window", resp["records"])
	}
	if total != float64(len(records)) {
		t.Errorf("total %v != %d records before any wraparound", total, len(records))
	}
	levels := map[string]int{}
	for _, raw := range records {
		rec := raw.(map[string]any)
		levels[rec["level"].(string)]++
		if _, ok := rec["tick"].(float64); !ok {
			t.Fatalf("record missing tick: %v", rec)
		}
	}
	// A single-module tenant has no L2 arbiter; tick/L0/L1 must be there.
	for _, lv := range []string{"tick", "l0", "l1"} {
		if levels[lv] == 0 {
			t.Errorf("no %q records (%v)", lv, levels)
		}
	}

	bounded := doJSON(t, h, http.MethodGet, "/v1/tenants/tel/telemetry?max=2", "", http.StatusOK)
	if got := bounded["records"].([]any); len(got) != 2 {
		t.Errorf("max=2 returned %d records", len(got))
	}
	if bounded["total"].(float64) != total {
		t.Errorf("bounded total %v, want %v", bounded["total"], total)
	}

	doJSON(t, h, http.MethodGet, "/v1/tenants/tel/telemetry?max=0", "", http.StatusBadRequest)
	doJSON(t, h, http.MethodGet, "/v1/tenants/tel/telemetry?max=x", "", http.StatusBadRequest)
	doJSON(t, h, http.MethodGet, "/v1/tenants/ghost/telemetry", "", http.StatusNotFound)
}

// TestServerTelemetryDisabled pins the -telemetry-records 0 path: the
// endpoint stays routable and returns an empty window.
func TestServerTelemetryDisabled(t *testing.T) {
	f := hierctl.NewFleet(hierctl.FleetConfig{Shards: 1})
	t.Cleanup(f.Close)
	h := newServer(f, 0).routes()
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"off","moduleSize":2,"fast":true}`, http.StatusCreated)
	doJSON(t, h, http.MethodPost, "/v1/tenants/off/observe", `{"count":400}`, http.StatusOK)
	resp := doJSON(t, h, http.MethodGet, "/v1/tenants/off/telemetry", "", http.StatusOK)
	if total := resp["total"].(float64); total != 0 {
		t.Errorf("total = %v, want 0 with recording disabled", total)
	}
	if records := resp["records"].([]any); len(records) != 0 {
		t.Errorf("records = %v, want empty", records)
	}
	// The per-level histograms stay at their headers — no samples.
	if strings.Contains(scrape(t, h), `hpmserve_level_decide_seconds_count{level=`) {
		t.Error("level histograms populated with recording disabled")
	}
}

// TestServerMetricsTelemetry covers the /metrics rewrite end to end: the
// output parses under the strict exposition linter, the flight-recorder
// drain populates the per-level histograms exactly once per record, and
// closing a tenant removes its per-tenant series.
func TestServerMetricsTelemetry(t *testing.T) {
	h, _ := testHandler(t)
	doJSON(t, h, http.MethodPost, "/v1/tenants",
		`{"id":"we\"ird","moduleSize":2,"fast":true}`, http.StatusCreated)
	for i := 0; i < 3; i++ {
		doJSON(t, h, http.MethodPost, "/v1/tenants/we%22ird/observe", `{"count":400}`, http.StatusOK)
	}

	body := scrape(t, h)
	if err := metrics.LintPromText(strings.NewReader(body)); err != nil {
		t.Fatalf("metrics output fails the exposition linter: %v\n%s", err, body)
	}
	for _, want := range []string{
		`hpmserve_tenant_bins{tenant="we\"ird"} 3`,
		`hpmserve_observe_seconds_count{tenant="we\"ird"} 3`,
		`hpmserve_level_decide_seconds_count{level="l0"}`,
		`hpmserve_level_explored_count{level="l1"}`,
		"# TYPE hpmserve_level_decide_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}

	// The drain is cursor-based: a second scrape with no new observations
	// must not re-count the same records.
	l0Count := func(body string) int {
		m := regexp.MustCompile(`hpmserve_level_decide_seconds_count\{level="l0"\} (\d+)`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("no l0 decide count in:\n%s", body)
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}
	first := l0Count(body)
	if first == 0 {
		t.Fatal("no l0 decides drained")
	}
	if again := l0Count(scrape(t, h)); again != first {
		t.Errorf("idle rescrape moved the l0 decide count %d -> %d", first, again)
	}

	// Closing the tenant drops its per-tenant series on the next scrape.
	doJSON(t, h, http.MethodDelete, "/v1/tenants/we%22ird", "", http.StatusOK)
	after := scrape(t, h)
	if err := metrics.LintPromText(strings.NewReader(after)); err != nil {
		t.Fatalf("post-delete metrics fail the linter: %v", err)
	}
	for _, gone := range []string{
		`hpmserve_tenant_bins{tenant="we\"ird"}`,
		`hpmserve_observe_seconds_count{tenant="we\"ird"}`,
	} {
		if strings.Contains(after, gone) {
			t.Errorf("closed tenant's series %q still exported", gone)
		}
	}
	if !strings.Contains(after, "hpmserve_tenants 0") {
		t.Error("tenant gauge did not drop to 0")
	}
}
