package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("offline learning takes a few seconds")
	}
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"abstraction maps", "C1", "C4", "module cost tree"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("offline learning takes a few seconds")
	}
	var out bytes.Buffer
	if err := run([]string{"-probe"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "g probe") {
		t.Errorf("probe output missing:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag: want error")
	}
}
