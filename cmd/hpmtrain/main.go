// Command hpmtrain runs and reports the offline simulation-based learning
// phase in isolation: the abstraction map g of each catalogue computer
// (§4.2) and the regression-tree module cost J̃ (§5.1). Useful to inspect
// what the higher-level controllers actually see.
//
// Usage:
//
//	hpmtrain             # learn and summarize g maps + module tree
//	hpmtrain -probe      # additionally print learned costs on a probe grid
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/metrics"
	"hierctl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpmtrain:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	fs := flag.NewFlagSet("hpmtrain", flag.ContinueOnError)
	probe := fs.Bool("probe", false, "print learned costs on a probe grid")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprofile); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}

	l0cfg := controller.DefaultL0Config()
	gcfg := controller.DefaultGMapConfig()

	fmt.Fprintln(w, "== abstraction maps g (per catalogue computer, §4.2) ==")
	tab := metrics.NewTable("computer", "freq points", "grid cells", "learn time")
	gmaps := make([]*controller.GMap, 0, 4)
	for kind := 0; kind < 4; kind++ {
		spec, err := cluster.StandardComputer(kind, fmt.Sprintf("C%d", kind+1))
		if err != nil {
			return err
		}
		start := time.Now()
		g, err := controller.LearnGMap(l0cfg, spec, gcfg)
		if err != nil {
			return err
		}
		tab.AddRow(spec.Name, len(spec.FrequenciesHz), g.Cells(), time.Since(start).String())
		gmaps = append(gmaps, g)
	}
	fmt.Fprintln(w, tab)

	if *probe {
		fmt.Fprintln(w, "== g probe: learned per-period cost for C4 ==")
		probeTab := metrics.NewTable("queue", "lambda (r/s)", "cost", "end queue", "resp (s)", "power")
		g := gmaps[3]
		for _, q := range []float64{0, 100, 300} {
			for _, lam := range []float64{10, 50, 90} {
				cost, qe, resp, pw, err := g.Evaluate(q, lam, 0.0175)
				if err != nil {
					return err
				}
				probeTab.AddRow(q, lam, cost, qe, resp, pw)
			}
		}
		fmt.Fprintln(w, probeTab)
	}

	fmt.Fprintln(w, "== module cost tree J̃ (§5.1) ==")
	start := time.Now()
	jt, err := controller.LearnModuleTree(l0cfg, controller.DefaultL1Config(), gmaps, controller.DefaultModuleSimConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "learned in %v\n", time.Since(start))
	if *probe {
		probeTab := metrics.NewTable("qAvg", "module lambda (r/s)", "J̃")
		for _, q := range []float64{0, 40} {
			for _, lam := range []float64{0, 50, 150, 300} {
				v, err := jt.Predict(q, lam, 0.0175)
				if err != nil {
					return err
				}
				probeTab.AddRow(q, lam, v)
			}
		}
		fmt.Fprintln(w, probeTab)
	}
	return nil
}
