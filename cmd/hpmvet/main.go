// Command hpmvet is the repo's static-analysis multichecker: it runs
// the internal/analysis suite — the machine-checkable forms of the
// conventions every equivalence pin depends on — over Go packages.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/hpmvet ./...
//
// As a vet tool (per-package, driven by the go command):
//
//	go build -o hpmvet ./cmd/hpmvet
//	go vet -vettool=$(pwd)/hpmvet ./...
//
// The analyzers:
//
//	simdeterminism  no wall clock / global rand / env / sleeps in
//	                deterministic simulation packages
//	maprange        no order-sensitive map iteration in those packages
//	hotalloc        no allocating constructs in //hpm:hotpath functions
//	recordernil     nil-receiver guards on internal/obs recorder methods
//	rawgo           goroutine fan-out only via internal/par (or cmd/)
//	metriclabel     constant, well-formed Prometheus registration
//	hpmdirective    every //hpm: annotation parses (no typo'd escapes)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 internal failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/hotalloc"
	"hierctl/internal/analysis/hpmdirective"
	"hierctl/internal/analysis/load"
	"hierctl/internal/analysis/maprange"
	"hierctl/internal/analysis/metriclabel"
	"hierctl/internal/analysis/rawgo"
	"hierctl/internal/analysis/recordernil"
	"hierctl/internal/analysis/simdeterminism"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	maprange.Analyzer,
	hotalloc.Analyzer,
	recordernil.Analyzer,
	rawgo.Analyzer,
	metriclabel.Analyzer,
	hpmdirective.Analyzer,
}

func main() {
	args := os.Args[1:]
	// The go command probes a vettool before use: -V=full must print a
	// version line, -flags the JSON list of supported flags.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			// The go command derives the vettool's cache key from the
			// trailing buildID field, so it must track the executable's
			// content: hash ourselves, like x/tools' unitchecker does.
			fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfHash())
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns))
}

// selfHash returns a content hash of the running executable, the
// stand-in build ID reported to the go command's tool-probing protocol.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// standalone loads whole-module packages via go list and analyzes them.
func standalone(patterns []string) int {
	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := analyze(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
			return 2
		}
		total += len(diags)
		printDiags(os.Stdout, pkg.Fset, diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "hpmvet: %d diagnostic(s)\n", total)
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON the go command hands a vettool
// (the unitchecker protocol).
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package from a go vet cfg file.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hpmvet: parse %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts file to exist after the run;
	// this suite carries no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants are production-code conventions: test files read
	// clocks and environments legitimately, so test variants reduce to
	// their non-test sources (external test packages to nothing).
	importPath := strings.TrimSuffix(strings.SplitN(cfg.ImportPath, " ", 2)[0], ".test")
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	for p, f := range cfg.PackageFile {
		exports[p] = f
	}
	imp := cfgImporter{base: load.ExportImporter(fset, exports), importMap: cfg.ImportMap}
	pkg, err := load.File(fset, importPath, cfg.Dir, goFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
		return 2
	}
	diags, err := analyze(pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpmvet: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		printDiags(os.Stderr, fset, diags)
		return 2
	}
	return 0
}

// cfgImporter resolves imports through the cfg's ImportMap/PackageFile
// export-data tables. A single underlying gc importer preserves package
// identity across shared dependencies.
type cfgImporter struct {
	base      types.ImporterFrom
	importMap map[string]string
}

func (ci cfgImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci cfgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := ci.importMap[path]; ok {
		path = mapped
	}
	return ci.base.ImportFrom(path, dir, mode)
}

// analyze runs the whole suite over one package, stamping analyzer
// names and ordering diagnostics by position.
func analyze(pkg *load.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := &analysis.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				d.Analyzer = name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

func printDiags(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(".", file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
