package main

import (
	"bytes"
	"strings"
	"testing"

	"hierctl"
)

// TestQuickstartSmoke runs the example end-to-end at a tiny scale so the
// example main cannot silently rot.
func TestQuickstartSmoke(t *testing.T) {
	var out bytes.Buffer
	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	if err := run(&out, opts, 32); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests completed", "mean response", "operational computers"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
