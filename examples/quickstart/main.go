// Quickstart: run the paper's §4.3 module (computers C1..C4 of Fig. 3)
// under two hours of the synthetic diurnal workload with the full
// three-level hierarchy, then print what happened.
package main

import (
	"fmt"
	"log"

	"hierctl"
)

func main() {
	// The §4.3 cluster: one module with the four Fig. 3 computers.
	spec, err := hierctl.StandardModuleCluster()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's controller settings: T_L0 = 30 s, N_L0 = 3, T_L1 = 2 min,
	// r* = 4 s, Q = 100, R = 1, W = 8. NewManager performs the offline
	// simulation-based learning of the abstraction maps (§4.2).
	cfg := hierctl.DefaultConfig()
	mgr, err := hierctl.NewManager(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two hours of the §4.3 synthetic trace (240 bins of 30 s) and the
	// 10 000-object virtual store with Zipf popularity.
	traceCfg := hierctl.DefaultSyntheticConfig()
	trace, err := hierctl.SyntheticTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	trace = trace.Slice(0, 240)
	store, err := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
	if err != nil {
		log.Fatal(err)
	}

	rec, err := mgr.Run(trace, store)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests completed : %d\n", rec.Completed)
	fmt.Printf("mean response      : %.3f s (target %.1f s)\n", rec.MeanResponse(), rec.TargetResponse)
	fmt.Printf("target met in      : %.1f%% of intervals\n", 100*(1-rec.ViolationFrac))
	fmt.Printf("energy consumed    : %.1f units\n", rec.Energy)
	fmt.Printf("computers on (avg) : %.2f of %d\n", rec.Operational.Mean(), spec.Computers())
	fmt.Printf("states per L1 step : %.0f (paper reports ≈858 for m=4)\n", rec.ExploredPerL1Decision())
	fmt.Printf("control time/period: %v (paper: ≈2 s in MATLAB)\n", rec.DecisionTimePerPeriod())
	fmt.Println()
	fmt.Print(rec.Operational.ASCIIPlot("operational computers over time", 80, 5))
}
