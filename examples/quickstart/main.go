// Quickstart: run the paper's §4.3 module (computers C1..C4 of Fig. 3)
// under two hours of the synthetic diurnal workload with the full
// three-level hierarchy, then print what happened.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hierctl"
)

func main() {
	// Two hours of the trace (240 bins of 30 s) at the paper's full
	// learning grids.
	if err := run(os.Stdout, hierctl.ExperimentOptions{Scale: 1, Seed: 1}, 240); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, opts hierctl.ExperimentOptions, bins int) error {
	// The §4.3 cluster: one module with the four Fig. 3 computers.
	spec, err := hierctl.StandardModuleCluster()
	if err != nil {
		return err
	}

	// The paper's controller settings: T_L0 = 30 s, N_L0 = 3, T_L1 = 2 min,
	// r* = 4 s, Q = 100, R = 1, W = 8. NewManager performs the offline
	// simulation-based learning of the abstraction maps (§4.2).
	mgr, err := hierctl.NewManager(spec, opts.Config())
	if err != nil {
		return err
	}

	// A slice of the §4.3 synthetic trace and the 10 000-object virtual
	// store with Zipf popularity.
	traceCfg := hierctl.DefaultSyntheticConfig()
	trace, err := hierctl.SyntheticTrace(traceCfg)
	if err != nil {
		return err
	}
	if bins > trace.Len() {
		bins = trace.Len()
	}
	trace = trace.Slice(0, bins)
	store, err := hierctl.NewStore(opts.Seed, hierctl.DefaultStoreConfig())
	if err != nil {
		return err
	}

	rec, err := mgr.Run(trace, store)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "requests completed : %d\n", rec.Completed)
	fmt.Fprintf(w, "mean response      : %.3f s (target %.1f s)\n", rec.MeanResponse(), rec.TargetResponse)
	fmt.Fprintf(w, "target met in      : %.1f%% of intervals\n", 100*(1-rec.ViolationFrac))
	fmt.Fprintf(w, "energy consumed    : %.1f units\n", rec.Energy)
	fmt.Fprintf(w, "computers on (avg) : %.2f of %d\n", rec.Operational.Mean(), spec.Computers())
	fmt.Fprintf(w, "states per L1 step : %.0f (paper reports ≈858 for m=4)\n", rec.ExploredPerL1Decision())
	fmt.Fprintf(w, "control time/period: %v (paper: ≈2 s in MATLAB)\n", rec.DecisionTimePerPeriod())
	fmt.Fprintln(w)
	fmt.Fprint(w, rec.Operational.ASCIIPlot("operational computers over time", 80, 5))
	return nil
}
