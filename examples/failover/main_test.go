package main

import (
	"bytes"
	"strings"
	"testing"

	"hierctl"
)

// TestFailoverSmoke runs the failure-injection example on a short trace.
func TestFailoverSmoke(t *testing.T) {
	var out bytes.Buffer
	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	if err := run(&out, opts, 48); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"offered requests", "completed", "operational computers"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
