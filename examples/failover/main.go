// Failover: inject computer failures mid-run and watch the hierarchy
// adapt — the L1 controller stops routing to failed machines and powers
// surviving ones, and the L2 controller shifts module fractions. The
// paper's introduction names component failure as a core disturbance an
// autonomic manager must absorb.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hierctl"
)

func main() {
	// 80 minutes of steady load (160 bins of 30 s) so the failure bites.
	if err := run(os.Stdout, hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}, 160); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, opts hierctl.ExperimentOptions, bins int) error {
	spec, err := hierctl.StandardCluster(2) // 2 modules × 4 computers
	if err != nil {
		return err
	}

	// A steady, moderately heavy load: ~150 req/s across 8 computers.
	trace, err := hierctl.StepTrace(bins, 30, 4500, 4500, bins)
	if err != nil {
		return err
	}

	mgr, err := hierctl.NewManager(spec, opts.Config())
	if err != nil {
		return err
	}

	// Fail two computers of module 1 a third into the run; repair one
	// of them two thirds in.
	third := trace.End() / 3
	mgr.InjectFailure(third, 0, 0)
	mgr.InjectFailure(third, 0, 1)
	mgr.InjectRepair(2*third, 0, 0)

	store, err := hierctl.NewStore(opts.Seed, hierctl.DefaultStoreConfig())
	if err != nil {
		return err
	}
	rec, err := mgr.Run(trace, store)
	if err != nil {
		return err
	}

	total := int64(trace.Sum())
	fmt.Fprintf(w, "offered requests   : %d\n", total)
	fmt.Fprintf(w, "completed          : %d (%.2f%%)\n", rec.Completed, 100*float64(rec.Completed)/float64(total))
	fmt.Fprintf(w, "dropped by failures: %d\n", rec.Dropped)
	fmt.Fprintf(w, "mean response      : %.3f s (target %.1f s)\n", rec.MeanResponse(), rec.TargetResponse)
	fmt.Fprintf(w, "violations         : %.1f%% of intervals\n", 100*rec.ViolationFrac)
	fmt.Fprintln(w)
	fmt.Fprint(w, rec.Operational.ASCIIPlot("operational computers (failures at 1/3, repair at 2/3)", 80, 6))
	fmt.Fprint(w, rec.ResponseMean.ASCIIPlot("mean response per 30 s (s)", 80, 6))
	return nil
}
