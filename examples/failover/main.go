// Failover: inject computer failures mid-run and watch the hierarchy
// adapt — the L1 controller stops routing to failed machines and powers
// surviving ones, and the L2 controller shifts module fractions. The
// paper's introduction names component failure as a core disturbance an
// autonomic manager must absorb.
package main

import (
	"fmt"
	"log"

	"hierctl"
)

func main() {
	spec, err := hierctl.StandardCluster(2) // 2 modules × 4 computers
	if err != nil {
		log.Fatal(err)
	}

	// A steady, moderately heavy load so the failure bites: ~150 req/s
	// across 8 computers for 80 minutes.
	trace, err := hierctl.StepTrace(160, 30, 4500, 4500, 160)
	if err != nil {
		log.Fatal(err)
	}

	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	mgr, err := hierctl.NewManager(spec, opts.Config())
	if err != nil {
		log.Fatal(err)
	}

	// Fail two computers of module 1 a third into the run; repair one
	// of them two thirds in.
	third := trace.End() / 3
	mgr.InjectFailure(third, 0, 0)
	mgr.InjectFailure(third, 0, 1)
	mgr.InjectRepair(2*third, 0, 0)

	store, err := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := mgr.Run(trace, store)
	if err != nil {
		log.Fatal(err)
	}

	total := int64(trace.Sum())
	fmt.Printf("offered requests   : %d\n", total)
	fmt.Printf("completed          : %d (%.2f%%)\n", rec.Completed, 100*float64(rec.Completed)/float64(total))
	fmt.Printf("dropped by failures: %d\n", rec.Dropped)
	fmt.Printf("mean response      : %.3f s (target %.1f s)\n", rec.MeanResponse(), rec.TargetResponse)
	fmt.Printf("violations         : %.1f%% of intervals\n", 100*rec.ViolationFrac)
	fmt.Println()
	fmt.Print(rec.Operational.ASCIIPlot("operational computers (failures at 1/3, repair at 2/3)", 80, 6))
	fmt.Print(rec.ResponseMean.ASCIIPlot("mean response per 30 s (s)", 80, 6))
}
