// Webfarm: the paper's §5.2 scenario — a 16-computer heterogeneous web
// farm (four modules) serving a World-Cup-98-like day — comparing the
// hierarchical LLC controller against the static all-on configuration and
// a utilization-threshold heuristic on energy and response time.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hierctl"
)

func main() {
	// A quarter of the WC'98-like day keeps this example snappy; raise
	// bins (or pass 0 for the quarter-day default) for longer runs.
	if err := run(os.Stdout, hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}, 0); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, opts hierctl.ExperimentOptions, bins int) error {
	spec, err := hierctl.StandardCluster(4) // 4 modules × 4 computers
	if err != nil {
		return err
	}

	wcCfg := hierctl.DefaultWC98Config()
	wcCfg.Seed = opts.Seed
	trace, err := hierctl.WC98Trace(wcCfg)
	if err != nil {
		return err
	}
	if bins <= 0 {
		bins = trace.Len() / 4
	} else if bins > trace.Len() {
		bins = trace.Len()
	}
	trace = trace.Slice(0, bins)

	fmt.Fprintf(w, "cluster: %d computers in %d modules, %d 2-minute intervals\n\n",
		spec.Computers(), len(spec.Modules), trace.Len())

	// Hierarchical LLC.
	mgr, err := hierctl.NewManager(spec, opts.Config())
	if err != nil {
		return err
	}
	store, err := hierctl.NewStore(opts.Seed, hierctl.DefaultStoreConfig())
	if err != nil {
		return err
	}
	rec, err := mgr.Run(trace, store)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s energy %9.0f   mean resp %6.3fs   violations %5.1f%%\n",
		"hierarchical-llc", rec.Energy, rec.MeanResponse(), 100*rec.ViolationFrac)
	llcEnergy := rec.Energy

	// Baselines on the identical workload.
	threshold, err := hierctl.ThresholdPolicy(0.35, 0.8, 1)
	if err != nil {
		return err
	}
	for _, pol := range []hierctl.BaselinePolicy{hierctl.AlwaysOnPolicy(), threshold} {
		store, err := hierctl.NewStore(opts.Seed, hierctl.DefaultStoreConfig())
		if err != nil {
			return err
		}
		bcfg := hierctl.DefaultBaselineConfig()
		bcfg.Seed = opts.Seed
		res, err := hierctl.RunBaseline(spec, pol, trace, store, bcfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s energy %9.0f   mean resp %6.3fs   violations %5.1f%%\n",
			res.Policy, res.Energy, res.MeanResponse, 100*res.ViolationFrac)
		if res.Policy == "always-on" && res.Energy > 0 {
			fmt.Fprintf(w, "%-18s (LLC saves %.1f%% vs always-on)\n", "",
				100*(1-llcEnergy/res.Energy))
		}
	}

	fmt.Fprintln(w)
	fmt.Fprint(w, rec.Operational.ASCIIPlot("LLC: operational computers (of 16)", 80, 6))
	for i, g := range rec.GammaModules {
		fmt.Fprint(w, g.ASCIIPlot(fmt.Sprintf("LLC: module %d load fraction", i+1), 80, 4))
	}
	return nil
}
