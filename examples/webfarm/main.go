// Webfarm: the paper's §5.2 scenario — a 16-computer heterogeneous web
// farm (four modules) serving a World-Cup-98-like day — comparing the
// hierarchical LLC controller against the static all-on configuration and
// a utilization-threshold heuristic on energy and response time.
package main

import (
	"fmt"
	"log"

	"hierctl"
)

func main() {
	spec, err := hierctl.StandardCluster(4) // 4 modules × 4 computers
	if err != nil {
		log.Fatal(err)
	}

	// A quarter of the WC'98-like day keeps this example snappy; pass
	// the full trace for the paper-scale run.
	wcCfg := hierctl.DefaultWC98Config()
	trace, err := hierctl.WC98Trace(wcCfg)
	if err != nil {
		log.Fatal(err)
	}
	trace = trace.Slice(0, trace.Len()/4)

	fmt.Printf("cluster: %d computers in %d modules, %d 2-minute intervals\n\n",
		spec.Computers(), len(spec.Modules), trace.Len())

	// Hierarchical LLC.
	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	mgr, err := hierctl.NewManager(spec, opts.Config())
	if err != nil {
		log.Fatal(err)
	}
	store, err := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := mgr.Run(trace, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s energy %9.0f   mean resp %6.3fs   violations %5.1f%%\n",
		"hierarchical-llc", rec.Energy, rec.MeanResponse(), 100*rec.ViolationFrac)
	llcEnergy := rec.Energy

	// Baselines on the identical workload.
	threshold, err := hierctl.ThresholdPolicy(0.35, 0.8, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range []hierctl.BaselinePolicy{hierctl.AlwaysOnPolicy(), threshold} {
		store, err := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
		if err != nil {
			log.Fatal(err)
		}
		bcfg := hierctl.DefaultBaselineConfig()
		res, err := hierctl.RunBaseline(spec, pol, trace, store, bcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s energy %9.0f   mean resp %6.3fs   violations %5.1f%%\n",
			res.Policy, res.Energy, res.MeanResponse, 100*res.ViolationFrac)
		if res.Policy == "always-on" && res.Energy > 0 {
			fmt.Printf("%-18s (LLC saves %.1f%% vs always-on)\n", "",
				100*(1-llcEnergy/res.Energy))
		}
	}

	fmt.Println()
	fmt.Print(rec.Operational.ASCIIPlot("LLC: operational computers (of 16)", 80, 6))
	for i, g := range rec.GammaModules {
		fmt.Print(g.ASCIIPlot(fmt.Sprintf("LLC: module %d load fraction", i+1), 80, 4))
	}
}
