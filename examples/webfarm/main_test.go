package main

import (
	"bytes"
	"strings"
	"testing"

	"hierctl"
)

// TestWebfarmSmoke runs the example's LLC-vs-baselines comparison on a
// tiny slice of the WC'98-like day.
func TestWebfarmSmoke(t *testing.T) {
	var out bytes.Buffer
	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	if err := run(&out, opts, 16); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hierarchical-llc", "always-on", "threshold"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
