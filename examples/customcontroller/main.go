// Customcontroller: the framework beyond the cluster case study. The
// generic LLC machinery (internal/llc) controls a *different* switching
// hybrid system — an admission controller for a rate-limited service that
// chooses from a finite set of admission quotas to keep a token bucket
// near its set-point under a forecast, bursty demand.
//
// This demonstrates what §2.3 promises: "one can systematically pose
// various performance control problems of interest within the same basic
// framework" — the model changes, the controller does not.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"hierctl/internal/forecast"
	"hierctl/internal/llc"
)

// bucketModel is a switching hybrid system: the state is the backlog of
// admitted-but-unserved work; the input is one of a finite set of
// admission quotas (requests/second); the environment is the offered
// demand. Admitting more keeps clients happy (low rejection cost) but
// grows the backlog; the backlog above the set-point is penalized like the
// paper's response-time slack.
type bucketModel struct {
	serviceRate float64   // drain rate, req/s
	quotas      []float64 // admissible admission rates
	setpoint    float64   // desired backlog
	step        float64   // control period, s
}

func (m bucketModel) Step(backlog float64, quota int, env llc.Env) float64 {
	demand := env[0]
	admitted := demand
	if q := m.quotas[quota]; admitted > q {
		admitted = q
	}
	next := backlog + (admitted-m.serviceRate)*m.step
	if next < 0 {
		next = 0
	}
	return next
}

func (m bucketModel) Cost(next float64, quota int, env llc.Env) float64 {
	demand := env[0]
	rejected := demand - m.quotas[quota]
	if rejected < 0 {
		rejected = 0
	}
	// Soft constraint on backlog (slack above set-point) plus rejection
	// cost — the same Eq. 3 shape as the cluster controllers.
	return 50*llc.Slack(next, m.setpoint) + 1*rejected
}

func (m bucketModel) Feasible(backlog float64) bool { return backlog < 10*m.setpoint }
func (m bucketModel) Inputs(float64) []int {
	idx := make([]int, len(m.quotas))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func main() {
	if err := run(os.Stdout, 40); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, steps int) error {
	model := bucketModel{
		serviceRate: 100,
		quotas:      []float64{40, 70, 100, 130, 160},
		setpoint:    200,
		step:        5,
	}

	// Forecast the demand with the same Kalman filter the cluster
	// hierarchy uses.
	kf, err := forecast.NewKalman(4, 0.5, 64)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	backlog := 0.0
	demand := 80.0
	fmt.Fprintln(w, "  t   demand  quota admitted backlog  (set-point 200)")
	for t := 0; t < steps; t++ {
		// Bursty demand: a regime switch at t=15 and noise throughout.
		base := 80.0
		if t >= 15 && t < 28 {
			base = 150
		}
		demand = base + rng.NormFloat64()*15
		if demand < 0 {
			demand = 0
		}
		kf.Observe(demand)

		// Three-step lookahead against the forecast.
		envs := make([]([]llc.Env), 3)
		for h := range envs {
			f := kf.Forecast(h + 1)
			if f < 0 {
				f = 0
			}
			envs[h] = []llc.Env{{f}}
		}
		res, err := llc.Exhaustive[float64, int](model, backlog, envs, llc.Options{})
		if err != nil {
			return err
		}
		quota := res.Inputs[0]
		backlog = model.Step(backlog, quota, llc.Env{demand})
		if t%2 == 0 {
			fmt.Fprintf(w, "%3d  %6.1f  %5.0f  %7.1f  %6.1f\n",
				t, demand, model.quotas[quota], min(demand, model.quotas[quota]), backlog)
		}
	}
	fmt.Fprintln(w, "\nThe controller widens the quota during the burst just enough to")
	fmt.Fprintln(w, "keep the backlog near its set-point, then tightens it again —")
	fmt.Fprintln(w, "the same LLC machinery that runs the cluster hierarchy.")
	return nil
}
