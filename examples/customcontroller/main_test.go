package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCustomControllerSmoke runs the admission-control loop for a few
// periods.
func TestCustomControllerSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "set-point 200") {
		t.Errorf("missing table header:\n%s", out.String())
	}
}
