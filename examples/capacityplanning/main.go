// Capacityplanning: use the simulator as a what-if tool — sweep cluster
// sizes (1..4 modules) against the same World-Cup-98-like day and report
// which configuration meets the response-time target at the least energy.
// §5.2 mentions the cluster was sized "after capacity planning for the
// workload of interest"; this example shows that planning step.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hierctl"
)

func main() {
	// An eighth of the day (75 two-minute bins around the morning rise)
	// keeps the sweep fast while covering low and high load.
	if err := run(os.Stdout, hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}, 75, 4); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, opts hierctl.ExperimentOptions, bins, maxModules int) error {
	wcCfg := hierctl.DefaultWC98Config()
	trace, err := hierctl.WC98Trace(wcCfg)
	if err != nil {
		return err
	}
	start := trace.Len() / 4
	if start+bins > trace.Len() {
		bins = trace.Len() - start
	}
	trace = trace.Slice(start, start+bins)

	fmt.Fprintln(w, "modules computers   energy  mean resp  violations  verdict")
	for p := 1; p <= maxModules; p++ {
		spec, err := hierctl.StandardCluster(p)
		if err != nil {
			return err
		}
		mgr, err := hierctl.NewManager(spec, opts.Config())
		if err != nil {
			return err
		}
		store, err := hierctl.NewStore(opts.Seed, hierctl.DefaultStoreConfig())
		if err != nil {
			return err
		}
		rec, err := mgr.Run(trace, store)
		if err != nil {
			return err
		}
		verdict := "meets r*"
		if rec.ViolationFrac > 0.10 {
			verdict = "UNDER-PROVISIONED"
		}
		fmt.Fprintf(w, "%7d %9d %8.0f %9.3fs %10.1f%%  %s\n",
			p, spec.Computers(), rec.Energy, rec.MeanResponse(), 100*rec.ViolationFrac, verdict)
	}
	fmt.Fprintln(w, "\nPick the smallest cluster whose violation fraction stays low —")
	fmt.Fprintln(w, "the hierarchy then earns the energy savings at run time.")
	return nil
}
