// Capacityplanning: use the simulator as a what-if tool — sweep cluster
// sizes (1..4 modules) against the same World-Cup-98-like day and report
// which configuration meets the response-time target at the least energy.
// §5.2 mentions the cluster was sized "after capacity planning for the
// workload of interest"; this example shows that planning step.
package main

import (
	"fmt"
	"log"

	"hierctl"
)

func main() {
	wcCfg := hierctl.DefaultWC98Config()
	trace, err := hierctl.WC98Trace(wcCfg)
	if err != nil {
		log.Fatal(err)
	}
	// An eighth of the day (75 two-minute bins around the morning rise)
	// keeps the sweep fast while covering low and high load.
	trace = trace.Slice(trace.Len()/4, trace.Len()/4+75)

	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	fmt.Println("modules computers   energy  mean resp  violations  verdict")
	for p := 1; p <= 4; p++ {
		spec, err := hierctl.StandardCluster(p)
		if err != nil {
			log.Fatal(err)
		}
		mgr, err := hierctl.NewManager(spec, opts.Config())
		if err != nil {
			log.Fatal(err)
		}
		store, err := hierctl.NewStore(1, hierctl.DefaultStoreConfig())
		if err != nil {
			log.Fatal(err)
		}
		rec, err := mgr.Run(trace, store)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "meets r*"
		if rec.ViolationFrac > 0.10 {
			verdict = "UNDER-PROVISIONED"
		}
		fmt.Printf("%7d %9d %8.0f %9.3fs %10.1f%%  %s\n",
			p, spec.Computers(), rec.Energy, rec.MeanResponse(), 100*rec.ViolationFrac, verdict)
	}
	fmt.Println("\nPick the smallest cluster whose violation fraction stays low —")
	fmt.Println("the hierarchy then earns the energy savings at run time.")
}
