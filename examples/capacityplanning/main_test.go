package main

import (
	"bytes"
	"strings"
	"testing"

	"hierctl"
)

// TestCapacityPlanningSmoke sweeps two tiny cluster sizes over a short
// slice of the day.
func TestCapacityPlanningSmoke(t *testing.T) {
	var out bytes.Buffer
	opts := hierctl.ExperimentOptions{Scale: 1, Seed: 1, Fast: true}
	if err := run(&out, opts, 16, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "modules computers") {
		t.Errorf("missing table header:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "\n"); got < 4 {
		t.Errorf("expected at least a header and two sweep rows:\n%s", out.String())
	}
}
